//! Inter-Coflow scheduling (§4.2): a framework for flexible preemption
//! policies across competing Coflows.
//!
//! Sunflow asks the operator for one thing only: a **priority ordering**
//! of Coflows. It then applies [`IntraCoflow`](crate::intra) to each
//! Coflow in that order against the shared PRT, so a more prioritized
//! Coflow is never blocked by a less prioritized one — lower-priority
//! reservations are truncated around higher-priority ones (Figure 2).
//!
//! The ordering is pluggable via [`PriorityPolicy`]; the paper's
//! evaluation uses [`ShortestFirst`] (order by `T_pL`), the policy that
//! makes Sunflow comparable to Varys and Aalo.

use crate::intra::{CoflowSchedule, IntraScheduler, SunflowConfig};
use crate::prt::Prt;
use ocs_model::{packet_lower_bound, Coflow, Fabric};
use std::cmp::Ordering;
use std::collections::HashMap;

/// A total priority order over Coflows. `compare` returning `Less` means
/// `a` is served *before* (with higher priority than) `b`.
pub trait PriorityPolicy {
    /// Compare two Coflows under this policy.
    fn compare(&self, a: &Coflow, b: &Coflow, fabric: &Fabric) -> Ordering;

    /// Sort Coflow references into service order. Ties are broken by
    /// arrival time and then id so every policy yields a deterministic
    /// total order.
    fn sort(&self, coflows: &mut Vec<&Coflow>, fabric: &Fabric) {
        coflows.sort_by(|a, b| {
            self.compare(a, b, fabric)
                .then_with(|| a.arrival().cmp(&b.arrival()))
                .then_with(|| a.id().cmp(&b.id()))
        });
    }

    /// Clone this policy into an owned, thread-safe box, when supported.
    ///
    /// Sharded backends (the port-group serving path in `ocs-sim`)
    /// advance disjoint partitions on worker threads and need one owned
    /// policy per shard. Every policy in this module returns `Some`; the
    /// default is `None`, which makes such backends fall back to
    /// deterministic sequential advancement rather than guess at thread
    /// safety.
    fn clone_box(&self) -> Option<Box<dyn PriorityPolicy + Send + Sync>> {
        None
    }
}

/// Policies are stateless comparators, so a shared reference is itself a
/// policy. This lets callers holding a `&dyn PriorityPolicy` hand it to
/// APIs that want an owned `Box<dyn PriorityPolicy + '_>` (the
/// `SchedulingBackend` constructors in `ocs-sim`) without cloning.
impl<P: PriorityPolicy + ?Sized> PriorityPolicy for &P {
    fn compare(&self, a: &Coflow, b: &Coflow, fabric: &Fabric) -> Ordering {
        (**self).compare(a, b, fabric)
    }

    fn sort(&self, coflows: &mut Vec<&Coflow>, fabric: &Fabric) {
        (**self).sort(coflows, fabric)
    }

    fn clone_box(&self) -> Option<Box<dyn PriorityPolicy + Send + Sync>> {
        (**self).clone_box()
    }
}

/// Shortest-Coflow-first: order by the packet-switched lower bound
/// `T_pL` (§4.2 — "the Coflows may be ordered by their T_pL"). This is
/// the policy used in the paper's comparison against Varys and Aalo.
#[derive(Clone, Copy, Debug, Default)]
pub struct ShortestFirst;

impl PriorityPolicy for ShortestFirst {
    fn compare(&self, a: &Coflow, b: &Coflow, fabric: &Fabric) -> Ordering {
        packet_lower_bound(a, fabric).cmp(&packet_lower_bound(b, fabric))
    }

    fn clone_box(&self) -> Option<Box<dyn PriorityPolicy + Send + Sync>> {
        Some(Box::new(*self))
    }
}

/// Longest-Coflow-first: the reverse of [`ShortestFirst`] over `T_pL`.
/// Not a policy the paper advocates — it exists as the adversarial end of
/// the policy spectrum for sensitivity studies (how much does Sunflow's
/// non-preemptive core lose under the *worst* reasonable ordering?) and
/// to exercise the pluggable-policy plumbing end to end.
#[derive(Clone, Copy, Debug, Default)]
pub struct LongestFirst;

impl PriorityPolicy for LongestFirst {
    fn compare(&self, a: &Coflow, b: &Coflow, fabric: &Fabric) -> Ordering {
        packet_lower_bound(b, fabric).cmp(&packet_lower_bound(a, fabric))
    }

    fn clone_box(&self) -> Option<Box<dyn PriorityPolicy + Send + Sync>> {
        Some(Box::new(*self))
    }
}

/// First-come-first-served: order by arrival time.
#[derive(Clone, Copy, Debug, Default)]
pub struct FirstComeFirstServed;

impl PriorityPolicy for FirstComeFirstServed {
    fn compare(&self, a: &Coflow, b: &Coflow, _fabric: &Fabric) -> Ordering {
        a.arrival().cmp(&b.arrival())
    }

    fn clone_box(&self) -> Option<Box<dyn PriorityPolicy + Send + Sync>> {
        Some(Box::new(*self))
    }
}

/// Class-based priorities (e.g. privileged vs. regular users, or
/// earlier-staged vs. later-staged job Coflows — the usage scenarios of
/// §4.2). A lower class number is served first; within a class, shortest
/// Coflow first. Coflows missing from the map fall into `default_class`.
#[derive(Clone, Debug)]
pub struct ClassThenShortest {
    classes: HashMap<u64, u32>,
    default_class: u32,
}

impl ClassThenShortest {
    /// Build from explicit per-Coflow classes; unlisted Coflows get
    /// `default_class`.
    pub fn new(classes: HashMap<u64, u32>, default_class: u32) -> ClassThenShortest {
        ClassThenShortest {
            classes,
            default_class,
        }
    }

    /// The class a Coflow belongs to.
    pub fn class_of(&self, coflow: &Coflow) -> u32 {
        *self
            .classes
            .get(&coflow.id())
            .unwrap_or(&self.default_class)
    }
}

impl PriorityPolicy for ClassThenShortest {
    fn compare(&self, a: &Coflow, b: &Coflow, fabric: &Fabric) -> Ordering {
        self.class_of(a)
            .cmp(&self.class_of(b))
            .then_with(|| ShortestFirst.compare(a, b, fabric))
    }

    fn clone_box(&self) -> Option<Box<dyn PriorityPolicy + Send + Sync>> {
        Some(Box::new(self.clone()))
    }
}

/// An explicit operator-supplied order: Coflows appear in the order their
/// ids appear in the list; unlisted Coflows go last (by id).
#[derive(Clone, Debug)]
pub struct ExplicitOrder {
    rank: HashMap<u64, usize>,
}

impl ExplicitOrder {
    /// Build from a list of Coflow ids, highest priority first.
    pub fn new(ids: impl IntoIterator<Item = u64>) -> ExplicitOrder {
        ExplicitOrder {
            rank: ids.into_iter().enumerate().map(|(r, id)| (id, r)).collect(),
        }
    }
}

impl PriorityPolicy for ExplicitOrder {
    fn compare(&self, a: &Coflow, b: &Coflow, _fabric: &Fabric) -> Ordering {
        let ra = self.rank.get(&a.id()).copied().unwrap_or(usize::MAX);
        let rb = self.rank.get(&b.id()).copied().unwrap_or(usize::MAX);
        ra.cmp(&rb)
    }

    fn clone_box(&self) -> Option<Box<dyn PriorityPolicy + Send + Sync>> {
        Some(Box::new(self.clone()))
    }
}

/// Offline inter-Coflow scheduler: Algorithm 1's `InterCoflow` procedure.
///
/// Given a batch of Coflows, it empties the PRT and applies the
/// intra-Coflow routine to each Coflow in priority order. Each Coflow is
/// scheduled no earlier than its arrival time. For the online
/// (event-driven) variant that reschedules on arrivals and completions,
/// see the `ocs-sim` crate.
#[derive(Clone, Copy, Debug)]
pub struct InterScheduler<'f> {
    fabric: &'f Fabric,
    config: SunflowConfig,
}

impl<'f> InterScheduler<'f> {
    /// Create a scheduler for `fabric`.
    pub fn new(fabric: &'f Fabric, config: SunflowConfig) -> InterScheduler<'f> {
        InterScheduler { fabric, config }
    }

    /// Schedule the batch under `policy`. Returns one schedule per Coflow,
    /// in the order the Coflows were given.
    pub fn schedule_batch(
        &self,
        coflows: &[Coflow],
        policy: &dyn PriorityPolicy,
    ) -> Vec<CoflowSchedule> {
        let mut prt = Prt::new(self.fabric.ports());
        self.schedule_batch_on(&mut prt, coflows, policy)
    }

    /// Like [`InterScheduler::schedule_batch`] but against an existing
    /// PRT (which may hold guard windows or prior commitments).
    pub fn schedule_batch_on(
        &self,
        prt: &mut Prt,
        coflows: &[Coflow],
        policy: &dyn PriorityPolicy,
    ) -> Vec<CoflowSchedule> {
        let intra = IntraScheduler::new(self.fabric, self.config);
        let mut order: Vec<&Coflow> = coflows.iter().collect();
        policy.sort(&mut order, self.fabric);

        let mut by_id: HashMap<u64, CoflowSchedule> = HashMap::with_capacity(coflows.len());
        for c in order {
            let s = intra.schedule_on(prt, c, c.arrival());
            by_id.insert(c.id(), s);
        }
        coflows
            .iter()
            .map(|c| by_id.remove(&c.id()).expect("scheduled every coflow"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ocs_model::{validate_port_constraints, Bandwidth, Dur, Time};

    fn fabric() -> Fabric {
        Fabric::new(4, Bandwidth::GBPS, Dur::from_millis(10))
    }

    fn mb(m: u64) -> u64 {
        m * 1_000_000
    }

    #[test]
    fn shortest_first_orders_by_packet_bound() {
        let f = fabric();
        let small = Coflow::builder(1).flow(0, 0, mb(1)).build();
        let big = Coflow::builder(0).flow(0, 0, mb(100)).build();
        let mut order: Vec<&Coflow> = vec![&big, &small];
        ShortestFirst.sort(&mut order, &f);
        assert_eq!(order[0].id(), 1);
    }

    /// The higher-priority Coflow must finish as if it were alone on the
    /// fabric; the lower-priority one works around it.
    #[test]
    fn priority_coflow_is_never_blocked() {
        let f = fabric();
        let hi = Coflow::builder(0).flow(0, 0, mb(1)).build(); // T_pL small
        let lo = Coflow::builder(1)
            .flow(0, 0, mb(100))
            .flow(0, 1, mb(100))
            .build();
        let inter = InterScheduler::new(&f, SunflowConfig::default());
        let schedules = inter.schedule_batch(&[hi.clone(), lo.clone()], &ShortestFirst);

        // hi alone would take delta + 8 ms = 18 ms.
        assert_eq!(schedules[0].cct(), Dur::from_millis(18));
        // Port constraints hold across BOTH coflows' reservations.
        let mut all = schedules[0].reservations().to_vec();
        all.extend_from_slice(schedules[1].reservations());
        validate_port_constraints(&all).unwrap();
    }

    /// Figure 2 shape: C2's reservation on a port needed later by C1 must
    /// be truncated, not block C1.
    #[test]
    fn figure2_truncation_behaviour() {
        let f = fabric();
        // C1: two flows from in.0; C2 shares out.1 via in.1.
        let c1 = Coflow::builder(0)
            .flow(0, 0, mb(1))
            .flow(0, 1, mb(1))
            .build();
        let c2 = Coflow::builder(1).flow(1, 1, mb(100)).build();
        let inter = InterScheduler::new(&f, SunflowConfig::default());
        let schedules = inter.schedule_batch(&[c1.clone(), c2.clone()], &ShortestFirst);
        // C1 (higher priority, smaller T_pL) is optimal: 2 x (10+8) ms.
        assert_eq!(schedules[0].cct(), Dur::from_millis(36));
        // C2 is split around C1's use of out.1.
        assert!(schedules[1].reservations().len() >= 2);
        let mut all = schedules[0].reservations().to_vec();
        all.extend_from_slice(schedules[1].reservations());
        validate_port_constraints(&all).unwrap();
    }

    #[test]
    fn arrival_times_are_respected() {
        let f = fabric();
        let late = Coflow::builder(0)
            .arrival(Time::from_millis(500))
            .flow(0, 0, mb(1))
            .build();
        let inter = InterScheduler::new(&f, SunflowConfig::default());
        let s = inter.schedule_batch(&[late], &ShortestFirst);
        assert_eq!(s[0].reservations()[0].start, Time::from_millis(500));
    }

    #[test]
    fn class_policy_overrides_size() {
        let f = fabric();
        let big_privileged = Coflow::builder(0).flow(0, 0, mb(100)).build();
        let small_regular = Coflow::builder(1).flow(0, 0, mb(1)).build();
        let policy =
            ClassThenShortest::new([(0u64, 0u32)].into_iter().collect(), /*default*/ 1);
        let mut order: Vec<&Coflow> = vec![&small_regular, &big_privileged];
        policy.sort(&mut order, &f);
        assert_eq!(order[0].id(), 0, "privileged coflow first despite size");
    }

    #[test]
    fn explicit_order_is_followed() {
        let f = fabric();
        let a = Coflow::builder(10).flow(0, 0, mb(1)).build();
        let b = Coflow::builder(20).flow(0, 0, mb(1)).build();
        let policy = ExplicitOrder::new([20, 10]);
        let mut order: Vec<&Coflow> = vec![&a, &b];
        policy.sort(&mut order, &f);
        assert_eq!(order[0].id(), 20);
    }

    #[test]
    fn longest_first_reverses_shortest_first() {
        let f = fabric();
        let small = Coflow::builder(1).flow(0, 0, mb(1)).build();
        let big = Coflow::builder(0).flow(0, 0, mb(100)).build();
        let mut order: Vec<&Coflow> = vec![&small, &big];
        LongestFirst.sort(&mut order, &f);
        assert_eq!(order[0].id(), 0, "bigger T_pL first");
        // Equal T_pL falls back to (arrival, id) just like every policy.
        let twin = Coflow::builder(2).flow(1, 1, mb(1)).build();
        let mut tie: Vec<&Coflow> = vec![&twin, &small];
        LongestFirst.sort(&mut tie, &f);
        assert_eq!(tie[0].id(), 1);
    }

    #[test]
    fn fcfs_orders_by_arrival() {
        let f = fabric();
        let first = Coflow::builder(5)
            .arrival(Time::from_millis(1))
            .flow(0, 0, mb(50))
            .build();
        let second = Coflow::builder(6)
            .arrival(Time::from_millis(2))
            .flow(0, 0, mb(1))
            .build();
        let mut order: Vec<&Coflow> = vec![&second, &first];
        FirstComeFirstServed.sort(&mut order, &f);
        assert_eq!(order[0].id(), 5);
    }

    /// Aggregate demand satisfaction across a batch: every flow of every
    /// coflow receives exactly its processing time.
    #[test]
    fn batch_satisfies_all_demand() {
        let f = fabric();
        let coflows = vec![
            Coflow::builder(0)
                .flow(0, 0, mb(3))
                .flow(1, 1, mb(2))
                .build(),
            Coflow::builder(1)
                .flow(0, 1, mb(5))
                .flow(1, 0, mb(7))
                .build(),
            Coflow::builder(2).flow(2, 2, mb(1)).build(),
        ];
        let inter = InterScheduler::new(&f, SunflowConfig::default());
        let schedules = inter.schedule_batch(&coflows, &ShortestFirst);
        for (c, s) in coflows.iter().zip(&schedules) {
            let served = ocs_model::served_per_flow(s.reservations(), f.delta());
            for (idx, fl) in c.flows().iter().enumerate() {
                let key = ocs_model::FlowRef {
                    coflow: c.id(),
                    flow_idx: idx,
                };
                assert_eq!(served[&key], f.processing_time(fl.bytes));
            }
        }
    }
}
