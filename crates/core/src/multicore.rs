//! K-core scheduling: per-core PRT shards and subflow→core placement.
//!
//! The multi-core OCS papers named in the workspace's PAPERS.md model the
//! network as `K` parallel circuit planes ("cores") over the same `N`
//! hosts; every host owns one transceiver per core, so the cores are
//! fully independent switching fabrics. For the scheduler this is the
//! natural sharding axis: each core gets its own [`Prt`] shard, and a
//! placement policy decides which core carries each subflow.
//!
//! Two pieces live here:
//!
//! * [`CorePlan`] — `K` per-core [`Prt`] shards behind the one
//!   [`PlanTable`] trait Algorithm 1 plans against, via *global port
//!   virtualization*: global port `g` denotes local port `g mod N` on
//!   core `g / N`. A demand pre-mapped to its assigned core's global
//!   ports is planned by the unmodified
//!   [`schedule_demands_on`](crate::intra::schedule_demands_on) engine;
//!   ports of different cores never alias, so per-core plans compose
//!   port-disjointly. With `K = 1` the mapping is the identity and every
//!   query delegates verbatim to the single shard — the degenerate
//!   single-switch case.
//! * [`CoreAssign`] — the placement seam: given a Coflow and the current
//!   per-core byte loads ([`CoreLoad`]), return one core per flow.
//!   Implementations: [`StaticHash`] (stateless FNV), [`RoundRobin`],
//!   [`LeastLoaded`] (by outstanding reserved bytes), [`RankPack`]
//!   (demand-aware: biggest flows first, each to the core minimizing its
//!   bottleneck-port load), and [`ThresholdSplit`] (the hybrid
//!   circuit/packet seam: a two-"core" split by flow size).

use crate::intra::PlanTable;
use crate::prt::{PortProbe, Prt, ResvKind};
use ocs_model::{Coflow, Dur, InPort, OutPort, Time};

// ---------------------------------------------------------------------
// CorePlan
// ---------------------------------------------------------------------

/// `K` per-core [`Prt`] shards behind one [`PlanTable`].
///
/// Global port `g` addresses local port `g % ports` on core
/// `g / ports`; [`CorePlan::global`] and [`CorePlan::split`] convert.
/// Every query and reservation delegates to exactly one shard, so a
/// planning call only ever touches the shards its demands were placed
/// on — cross-core plans are port-disjoint by construction.
#[derive(Clone, Debug)]
pub struct CorePlan {
    shards: Vec<Prt>,
    ports: usize,
    /// Incrementally maintained total reserved time per core (the
    /// utilization-skew gauge; equals the full-shard scan
    /// [`CorePlan::naive_reserved_on`] recomputes).
    reserved: Vec<Dur>,
}

impl CorePlan {
    /// An empty plan of `cores` shards with `ports` ports each.
    ///
    /// # Panics
    /// Panics if `cores` or `ports` is zero.
    pub fn new(cores: usize, ports: usize) -> CorePlan {
        assert!(cores > 0, "a core plan needs at least one core");
        CorePlan {
            shards: (0..cores).map(|_| Prt::new(ports)).collect(),
            ports,
            reserved: vec![Dur::ZERO; cores],
        }
    }

    /// Number of cores, `K`.
    pub fn cores(&self) -> usize {
        self.shards.len()
    }

    /// Ports per core, `N`.
    pub fn ports_per_core(&self) -> usize {
        self.ports
    }

    /// The global port id of local `port` on `core`.
    pub fn global(&self, core: usize, port: usize) -> usize {
        debug_assert!(core < self.shards.len() && port < self.ports);
        core * self.ports + port
    }

    /// The `(core, local port)` pair a global port id addresses.
    pub fn split(&self, global: usize) -> (usize, usize) {
        (global / self.ports, global % self.ports)
    }

    /// One core's shard (read-only).
    pub fn shard(&self, core: usize) -> &Prt {
        &self.shards[core]
    }

    /// One core's shard (mutable — e.g. for history retirement).
    pub fn shard_mut(&mut self, core: usize) -> &mut Prt {
        &mut self.shards[core]
    }

    /// Total reserved time on `core`, maintained incrementally as
    /// reservations are made.
    pub fn reserved_on(&self, core: usize) -> Dur {
        self.reserved[core]
    }

    /// The core with the least total reserved time (lowest index wins
    /// ties).
    pub fn least_loaded_core(&self) -> usize {
        let mut best = 0;
        for c in 1..self.reserved.len() {
            if self.reserved[c] < self.reserved[best] {
                best = c;
            }
        }
        best
    }

    /// Retire reservations that ended at or before `cutoff` from every
    /// shard; returns how many records were forgotten.
    pub fn forget_before(&mut self, cutoff: Time) -> usize {
        self.shards
            .iter_mut()
            .map(|s| s.forget_before(cutoff))
            .sum()
    }

    /// Recompute `reserved_on(core)` from a full scan of the shard —
    /// the reference twin of the incremental gauge. Note the gauge
    /// keeps counting reservations the scan no longer sees once
    /// [`CorePlan::forget_before`] retired them; the equivalence holds
    /// on un-retired tables.
    #[cfg(any(test, feature = "naive-twins"))]
    pub fn naive_reserved_on(&self, core: usize) -> Dur {
        self.shards[core]
            .all_reservations()
            .iter()
            .map(|r| r.end.since(r.start))
            .sum()
    }
}

impl PlanTable for CorePlan {
    fn ports(&self) -> usize {
        self.ports * self.shards.len()
    }
    fn in_free_at(&self, i: InPort, t: Time) -> bool {
        self.shards[i / self.ports].in_free_at(i % self.ports, t)
    }
    fn out_free_at(&self, j: OutPort, t: Time) -> bool {
        self.shards[j / self.ports].out_free_at(j % self.ports, t)
    }
    fn in_next_start_after(&self, i: InPort, t: Time) -> Time {
        self.shards[i / self.ports].in_next_start_after(i % self.ports, t)
    }
    fn out_next_start_after(&self, j: OutPort, t: Time) -> Time {
        self.shards[j / self.ports].out_next_start_after(j % self.ports, t)
    }
    fn in_next_release_after(&self, i: InPort, t: Time) -> Option<Time> {
        self.shards[i / self.ports].in_next_release_after(i % self.ports, t)
    }
    fn out_next_release_after(&self, j: OutPort, t: Time) -> Option<Time> {
        self.shards[j / self.ports].out_next_release_after(j % self.ports, t)
    }
    fn in_probe(&self, i: InPort, t: Time) -> PortProbe {
        self.shards[i / self.ports].in_probe(i % self.ports, t)
    }
    fn out_probe(&self, j: OutPort, t: Time) -> PortProbe {
        self.shards[j / self.ports].out_probe(j % self.ports, t)
    }
    fn reserve(&mut self, src: InPort, dst: OutPort, start: Time, end: Time, kind: ResvKind) {
        let core = src / self.ports;
        assert_eq!(
            core,
            dst / self.ports,
            "a circuit cannot span cores (src {src}, dst {dst}, {} ports/core)",
            self.ports
        );
        self.shards[core].reserve(src % self.ports, dst % self.ports, start, end, kind);
        self.reserved[core] += end.since(start);
    }
}

// ---------------------------------------------------------------------
// Core loads
// ---------------------------------------------------------------------

/// Outstanding per-core byte loads, the input of load-aware placement:
/// total bytes per core plus per-port send/receive bytes per core.
/// The owner adds a Coflow's flows when it places them and removes them
/// when the Coflow completes, so the gauge tracks *outstanding* demand.
#[derive(Clone, Debug)]
pub struct CoreLoad {
    total: Vec<u64>,
    in_bytes: Vec<Vec<u64>>,
    out_bytes: Vec<Vec<u64>>,
}

impl CoreLoad {
    /// Zero load over `cores` cores of `ports` ports each.
    pub fn new(cores: usize, ports: usize) -> CoreLoad {
        assert!(cores > 0, "load tracking needs at least one core");
        CoreLoad {
            total: vec![0; cores],
            in_bytes: vec![vec![0; ports]; cores],
            out_bytes: vec![vec![0; ports]; cores],
        }
    }

    /// Number of cores tracked.
    pub fn cores(&self) -> usize {
        self.total.len()
    }

    /// Account `bytes` of demand from `src` to `dst` on `core`.
    pub fn add(&mut self, core: usize, src: InPort, dst: OutPort, bytes: u64) {
        self.total[core] += bytes;
        self.in_bytes[core][src] += bytes;
        self.out_bytes[core][dst] += bytes;
    }

    /// Release `bytes` of demand from `src` to `dst` on `core`.
    pub fn remove(&mut self, core: usize, src: InPort, dst: OutPort, bytes: u64) {
        self.total[core] -= bytes;
        self.in_bytes[core][src] -= bytes;
        self.out_bytes[core][dst] -= bytes;
    }

    /// Outstanding bytes on `core`.
    pub fn total(&self, core: usize) -> u64 {
        self.total[core]
    }

    /// Outstanding `(send, receive)` bytes of `(src, dst)` on `core`.
    pub fn port_load(&self, core: usize, src: InPort, dst: OutPort) -> (u64, u64) {
        (self.in_bytes[core][src], self.out_bytes[core][dst])
    }
}

// ---------------------------------------------------------------------
// Placement policies
// ---------------------------------------------------------------------

/// A subflow→core placement policy: one core index per flow of
/// `coflow`, each strictly below `cores`.
///
/// Policies may consult the outstanding loads but never mutate them —
/// the caller accounts the placement it actually commits (and releases
/// it on completion), so a rejected or re-planned placement never
/// skews the gauge.
pub trait CoreAssign {
    /// Canonical policy name for labels and selectors.
    fn name(&self) -> &'static str;

    /// Place every flow of `coflow`: returns `coflow.num_flows()` core
    /// indices, each `< cores`.
    fn assign(&mut self, coflow: &Coflow, cores: usize, load: &CoreLoad) -> Vec<usize>;
}

const FNV_OFFSET: u64 = 0xcbf29ce484222325;
const FNV_PRIME: u64 = 0x100000001b3;

fn fnv1a(seed: u64, words: &[u64]) -> u64 {
    let mut h = FNV_OFFSET ^ seed.wrapping_mul(FNV_PRIME);
    for &w in words {
        for byte in w.to_le_bytes() {
            h ^= byte as u64;
            h = h.wrapping_mul(FNV_PRIME);
        }
    }
    h
}

/// Stateless placement: FNV-1a over `(coflow id, src, dst)` modulo `K`.
/// Deterministic, history-free, and uniform in expectation — the
/// baseline every load-aware policy has to beat.
#[derive(Clone, Copy, Debug, Default)]
pub struct StaticHash;

impl CoreAssign for StaticHash {
    fn name(&self) -> &'static str {
        "hash"
    }

    fn assign(&mut self, coflow: &Coflow, cores: usize, _load: &CoreLoad) -> Vec<usize> {
        coflow
            .flows()
            .iter()
            .map(|f| (fnv1a(coflow.id(), &[f.src as u64, f.dst as u64]) % cores as u64) as usize)
            .collect()
    }
}

/// Flow-index round-robin within each Coflow: flow `i` to core
/// `i mod K`. Spreads every Coflow across all cores regardless of load.
#[derive(Clone, Copy, Debug, Default)]
pub struct RoundRobin;

impl CoreAssign for RoundRobin {
    fn name(&self) -> &'static str {
        "round-robin"
    }

    fn assign(&mut self, coflow: &Coflow, cores: usize, _load: &CoreLoad) -> Vec<usize> {
        (0..coflow.num_flows()).map(|i| i % cores).collect()
    }
}

/// Least-loaded-by-reserved-bytes: each flow (in Coflow order) goes to
/// the core with the least outstanding bytes, counting the bytes this
/// call has already placed; ties break to the lowest core index.
#[derive(Clone, Copy, Debug, Default)]
pub struct LeastLoaded;

impl CoreAssign for LeastLoaded {
    fn name(&self) -> &'static str {
        "least-loaded"
    }

    fn assign(&mut self, coflow: &Coflow, cores: usize, load: &CoreLoad) -> Vec<usize> {
        let mut totals: Vec<u64> = (0..cores).map(|c| load.total(c)).collect();
        coflow
            .flows()
            .iter()
            .map(|f| {
                let mut best = 0;
                for c in 1..cores {
                    if totals[c] < totals[best] {
                        best = c;
                    }
                }
                totals[best] += f.bytes;
                best
            })
            .collect()
    }
}

/// Demand-aware rank-packing: flows are considered biggest-first (the
/// classic longest-processing-time list-scheduling order), and each
/// goes to the core where its *bottleneck port* — the busier of its
/// send and receive port, after adding the flow — ends up least
/// loaded. Ties break to the lowest core index. This is the placement
/// rule of the O(K)-approximation analysis: balancing bottleneck-port
/// load across cores bounds the per-port completion time against the
/// K-core lower bound.
#[derive(Clone, Copy, Debug, Default)]
pub struct RankPack;

impl CoreAssign for RankPack {
    fn name(&self) -> &'static str {
        "rank-pack"
    }

    fn assign(&mut self, coflow: &Coflow, cores: usize, load: &CoreLoad) -> Vec<usize> {
        let flows = coflow.flows();
        let mut order: Vec<usize> = (0..flows.len()).collect();
        order.sort_by(|&a, &b| flows[b].bytes.cmp(&flows[a].bytes).then(a.cmp(&b)));
        // This call's own placements, accumulated on top of the global
        // gauge so sibling subflows sharing a port spread out.
        let mut extra_in: Vec<(usize, usize, u64)> = Vec::new();
        let mut extra_out: Vec<(usize, usize, u64)> = Vec::new();
        let added = |list: &[(usize, usize, u64)], core: usize, port: usize| -> u64 {
            list.iter()
                .filter(|&&(c, p, _)| c == core && p == port)
                .map(|&(_, _, b)| b)
                .sum()
        };
        let mut placement = vec![0usize; flows.len()];
        for &fi in &order {
            let f = &flows[fi];
            let mut best = 0usize;
            let mut best_cost = u64::MAX;
            for c in 0..cores {
                let (gi, go) = load.port_load(c, f.src, f.dst);
                let ci = gi + added(&extra_in, c, f.src) + f.bytes;
                let co = go + added(&extra_out, c, f.dst) + f.bytes;
                let cost = ci.max(co);
                if cost < best_cost {
                    best_cost = cost;
                    best = c;
                }
            }
            extra_in.push((best, f.src, f.bytes));
            extra_out.push((best, f.dst, f.bytes));
            placement[fi] = best;
        }
        placement
    }
}

/// The hybrid circuit/packet seam expressed as a two-core placement:
/// flows strictly smaller than `threshold` bytes go to core 1 (the
/// packet network), everything else to core 0 (the circuits). With
/// `threshold = 0` everything rides core 0.
#[derive(Clone, Copy, Debug)]
pub struct ThresholdSplit {
    /// Flows strictly below this many bytes go to core 1.
    pub threshold: u64,
}

impl ThresholdSplit {
    /// A split at `threshold` bytes.
    pub fn new(threshold: u64) -> ThresholdSplit {
        ThresholdSplit { threshold }
    }
}

impl CoreAssign for ThresholdSplit {
    fn name(&self) -> &'static str {
        "threshold-split"
    }

    fn assign(&mut self, coflow: &Coflow, cores: usize, _load: &CoreLoad) -> Vec<usize> {
        assert!(cores >= 2, "a threshold split needs both sides");
        coflow
            .flows()
            .iter()
            .map(|f| usize::from(f.bytes < self.threshold))
            .collect()
    }
}

/// Every named placement policy, selectable by name (the
/// `--backend sunflow:<K>:<assign>` selector and the bench sweeps).
/// [`ThresholdSplit`] is deliberately absent: it is the hybrid seam,
/// parameterized by a byte threshold, not a K-core balancer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CoreAssignKind {
    /// [`StaticHash`].
    StaticHash,
    /// [`RoundRobin`].
    RoundRobin,
    /// [`LeastLoaded`].
    LeastLoaded,
    /// [`RankPack`].
    RankPack,
}

impl CoreAssignKind {
    /// Every selectable placement policy.
    pub const ALL: [CoreAssignKind; 4] = [
        CoreAssignKind::StaticHash,
        CoreAssignKind::RoundRobin,
        CoreAssignKind::LeastLoaded,
        CoreAssignKind::RankPack,
    ];

    /// The canonical selector name.
    pub fn name(&self) -> &'static str {
        match self {
            CoreAssignKind::StaticHash => "hash",
            CoreAssignKind::RoundRobin => "round-robin",
            CoreAssignKind::LeastLoaded => "least-loaded",
            CoreAssignKind::RankPack => "rank-pack",
        }
    }

    /// Construct the policy.
    pub fn build(&self) -> Box<dyn CoreAssign + Send> {
        match self {
            CoreAssignKind::StaticHash => Box::new(StaticHash),
            CoreAssignKind::RoundRobin => Box::new(RoundRobin),
            CoreAssignKind::LeastLoaded => Box::new(LeastLoaded),
            CoreAssignKind::RankPack => Box::new(RankPack),
        }
    }
}

/// A placement-policy selector no [`CoreAssignKind`] answers to.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UnknownAssignError {
    /// The rejected selector.
    pub input: String,
}

impl std::fmt::Display for UnknownAssignError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "unknown placement policy '{}' (expected one of: hash, round-robin, least-loaded, rank-pack)",
            self.input
        )
    }
}

impl std::error::Error for UnknownAssignError {}

impl std::str::FromStr for CoreAssignKind {
    type Err = UnknownAssignError;

    fn from_str(s: &str) -> Result<CoreAssignKind, UnknownAssignError> {
        match s.to_ascii_lowercase().as_str() {
            "hash" | "static-hash" => Ok(CoreAssignKind::StaticHash),
            "rr" | "round-robin" | "roundrobin" => Ok(CoreAssignKind::RoundRobin),
            "least-loaded" | "leastloaded" | "ll" => Ok(CoreAssignKind::LeastLoaded),
            "rank-pack" | "rankpack" | "rp" => Ok(CoreAssignKind::RankPack),
            _ => Err(UnknownAssignError {
                input: s.to_string(),
            }),
        }
    }
}

impl std::fmt::Display for CoreAssignKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

// ---------------------------------------------------------------------
// Partitioning
// ---------------------------------------------------------------------

/// Split `coflow` into one sub-Coflow per core according to a placement
/// (`assignment[i]` is flow `i`'s core). Returns the per-core parts
/// (`None` where a core received nothing) and, per original flow, its
/// `(core, index within that core's part)` — the map a caller uses to
/// reassemble per-flow results from per-core outcomes.
///
/// Flow order within each part follows the original Coflow, so a part
/// is itself a well-formed Coflow with the same id and arrival.
pub fn partition_by_core(
    coflow: &Coflow,
    assignment: &[usize],
    cores: usize,
) -> (Vec<Option<Coflow>>, Vec<(usize, usize)>) {
    assert_eq!(
        assignment.len(),
        coflow.num_flows(),
        "placement must cover every flow"
    );
    let mut per_core: Vec<Vec<&ocs_model::Flow>> = vec![Vec::new(); cores];
    let mut map = Vec::with_capacity(coflow.num_flows());
    for (f, &core) in coflow.flows().iter().zip(assignment) {
        assert!(core < cores, "placement core {core} out of range");
        map.push((core, per_core[core].len()));
        per_core[core].push(f);
    }
    let parts = per_core
        .into_iter()
        .map(|flows| {
            flows
                .into_iter()
                .fold(
                    Coflow::builder(coflow.id()).arrival(coflow.arrival()),
                    |b, f| b.flow(f.src, f.dst, f.bytes),
                )
                .try_build()
        })
        .collect();
    (parts, map)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::intra::{schedule_demands_on, Demand, ScheduleScratch, SunflowConfig};
    use ocs_model::{Bandwidth, Fabric};

    fn demands_for(fabric: &Fabric, c: &Coflow) -> Vec<Demand> {
        c.flows()
            .iter()
            .enumerate()
            .map(|(i, f)| Demand {
                flow_idx: i,
                src: f.src,
                dst: f.dst,
                remaining: fabric.processing_time(f.bytes),
            })
            .collect()
    }

    #[test]
    fn k1_core_plan_matches_a_plain_prt() {
        let fabric = Fabric::new(4, Bandwidth::GBPS, Dur::from_millis(10));
        let c = Coflow::builder(7)
            .flow(0, 1, 5_000_000)
            .flow(1, 0, 3_000_000)
            .flow(2, 3, 9_000_000)
            .flow(0, 2, 1_000_000)
            .build();
        let demands = demands_for(&fabric, &c);
        let cfg = SunflowConfig::default();
        let mut scratch = ScheduleScratch::new();

        let mut prt = Prt::new(4);
        let (plain, _) = schedule_demands_on(
            &mut prt,
            7,
            &demands,
            Time::ZERO,
            fabric.delta(),
            cfg,
            &mut scratch,
        );

        let mut plan = CorePlan::new(1, 4);
        let (sharded, _) = schedule_demands_on(
            &mut plan,
            7,
            &demands,
            Time::ZERO,
            fabric.delta(),
            cfg,
            &mut scratch,
        );

        assert_eq!(plain, sharded);
        assert_eq!(plan.reserved_on(0), plan.naive_reserved_on(0));
    }

    #[test]
    fn cross_core_demands_plan_independently() {
        // Two flows sharing a physical src port but placed on different
        // cores do not block each other: each core is its own plane.
        let fabric = Fabric::new(4, Bandwidth::GBPS, Dur::from_millis(10));
        let mut plan = CorePlan::new(2, 4);
        let p = fabric.processing_time(5_000_000);
        let demands = [
            Demand {
                flow_idx: 0,
                src: plan.global(0, 0),
                dst: plan.global(0, 1),
                remaining: p,
            },
            Demand {
                flow_idx: 1,
                src: plan.global(1, 0),
                dst: plan.global(1, 1),
                remaining: p,
            },
        ];
        let mut scratch = ScheduleScratch::new();
        let (resv, _) = schedule_demands_on(
            &mut plan,
            1,
            &demands,
            Time::ZERO,
            fabric.delta(),
            SunflowConfig::default(),
            &mut scratch,
        );
        assert_eq!(resv.len(), 2);
        // Both start immediately — no serialization across cores.
        assert!(resv.iter().all(|r| r.start == Time::ZERO));
        assert_eq!(plan.reserved_on(0), plan.reserved_on(1));
        assert_eq!(plan.naive_reserved_on(0), plan.reserved_on(0));
        assert_eq!(plan.least_loaded_core(), 0);
    }

    #[test]
    #[should_panic(expected = "cannot span cores")]
    fn cross_core_circuits_are_rejected() {
        let mut plan = CorePlan::new(2, 4);
        PlanTable::reserve(
            &mut plan,
            0,
            5,
            Time::ZERO,
            Time::from_millis(1),
            ResvKind::Guard,
        );
    }

    fn sample() -> Coflow {
        Coflow::builder(3)
            .arrival(Time::from_millis(5))
            .flow(0, 1, 100)
            .flow(1, 2, 900)
            .flow(2, 0, 400)
            .flow(3, 3, 900)
            .build()
    }

    #[test]
    fn every_policy_places_within_range_and_deterministically() {
        let c = sample();
        let load = CoreLoad::new(3, 4);
        for kind in CoreAssignKind::ALL {
            let mut p1 = kind.build();
            let mut p2 = kind.build();
            let a = p1.assign(&c, 3, &load);
            assert_eq!(a.len(), c.num_flows(), "{kind}");
            assert!(a.iter().all(|&core| core < 3), "{kind}");
            assert_eq!(a, p2.assign(&c, 3, &load), "{kind}");
            assert_eq!(kind.name().parse::<CoreAssignKind>(), Ok(kind));
        }
        assert!("warp".parse::<CoreAssignKind>().is_err());
    }

    #[test]
    fn least_loaded_balances_bytes() {
        let c = sample();
        let load = CoreLoad::new(2, 4);
        let a = LeastLoaded.assign(&c, 2, &load);
        // 100 → c0, 900 → c1, 400 → c0, 900 → c0 (500 < 900).
        assert_eq!(a, vec![0, 1, 0, 0]);

        let mut loaded = CoreLoad::new(2, 4);
        loaded.add(0, 0, 0, 10_000);
        let b = LeastLoaded.assign(&c, 2, &loaded);
        assert!(b.iter().all(|&core| core == 1), "core 0 is drowned");
    }

    #[test]
    fn rank_pack_spreads_a_shared_port() {
        // Four equal flows out of the same src port, two cores: the
        // bottleneck rule alternates them.
        let c = Coflow::builder(1)
            .flow(0, 1, 1_000)
            .flow(0, 2, 1_000)
            .flow(0, 3, 1_000)
            .flow(0, 4, 1_000)
            .build();
        let load = CoreLoad::new(2, 8);
        let a = RankPack.assign(&c, 2, &load);
        assert_eq!(a.iter().filter(|&&core| core == 0).count(), 2);
        assert_eq!(a.iter().filter(|&&core| core == 1).count(), 2);
    }

    #[test]
    fn threshold_split_separates_small_flows() {
        let c = sample();
        let load = CoreLoad::new(2, 4);
        let a = ThresholdSplit::new(500).assign(&c, 2, &load);
        assert_eq!(a, vec![1, 0, 1, 0]);
    }

    #[test]
    fn partition_round_trips_flows() {
        let c = sample();
        let assignment = vec![1, 0, 1, 2];
        let (parts, map) = partition_by_core(&c, &assignment, 3);
        assert_eq!(map, vec![(1, 0), (0, 0), (1, 1), (2, 0)]);
        let p0 = parts[0].as_ref().expect("core 0 got flow 1");
        assert_eq!(p0.num_flows(), 1);
        assert_eq!(p0.flows()[0].bytes, 900);
        assert_eq!(p0.arrival(), c.arrival());
        assert_eq!(p0.id(), c.id());
        let p1 = parts[1].as_ref().expect("core 1 got flows 0 and 2");
        assert_eq!(p1.num_flows(), 2);
        assert_eq!(p1.flows()[1].bytes, 400);
        // Total bytes are conserved.
        let total: u64 = parts.iter().flatten().map(Coflow::total_bytes).sum();
        assert_eq!(total, c.total_bytes());
    }

    #[test]
    fn core_load_add_remove_round_trips() {
        let mut load = CoreLoad::new(2, 4);
        load.add(1, 2, 3, 500);
        assert_eq!(load.total(1), 500);
        assert_eq!(load.port_load(1, 2, 3), (500, 500));
        assert_eq!(load.port_load(0, 2, 3), (0, 0));
        load.remove(1, 2, 3, 500);
        assert_eq!(load.total(1), 0);
        assert_eq!(load.port_load(1, 2, 3), (0, 0));
    }
}
