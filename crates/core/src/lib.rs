//! # sunflow-core — the Sunflow circuit scheduling algorithm
//!
//! Reproduction of the scheduling contribution of *"Sunflow: Efficient
//! Optical Circuit Scheduling for Coflows"* (Huang, Sun, Ng — CoNEXT'16).
//!
//! Sunflow schedules Coflows on an optical circuit switch under the
//! **not-all-stop** model and makes preemption decisions at two levels:
//!
//! * **Intra-Coflow** ([`intra`]): subflows of a Coflow never preempt each
//!   other. Each circuit is reserved in the Port Reservation Table
//!   ([`prt`]) for its full remaining demand (plus the reconfiguration
//!   delay `δ`), so offline every subflow costs exactly one circuit setup.
//!   The paper proves (Lemma 1) that the resulting CCT is within a factor
//!   of two of the circuit-switched optimum for any bandwidth, any `δ`,
//!   any Coflow and any ordering of scheduled circuits — an invariant this
//!   workspace checks with exact integer arithmetic in its property tests.
//! * **Inter-Coflow** ([`inter`]): a pluggable priority framework. Coflows
//!   are scheduled one at a time in policy order against the shared PRT;
//!   lower-priority reservations are truncated around higher-priority
//!   ones, never the other way around. [`starvation`] adds the paper's
//!   `(Φ, T, τ)` round-robin guard so that even the lowest-priority
//!   Coflow receives service within every `N(T+τ)` interval.
//! * **K-core sharding** ([`multicore`]): `K` per-core PRT shards behind
//!   the one [`PlanTable`](crate::intra::PlanTable) trait
//!   ([`CorePlan`]), plus the subflow→core placement policies
//!   ([`CoreAssign`]) of the multi-core OCS generalization. `K = 1` is
//!   the degenerate single-switch case and replays byte-identically.
//! * **Hybrid demand splitting** ([`split`]): the [`SplitPolicy`] seam
//!   routing each arriving Coflow's bytes between the circuit fabric
//!   and a slim packet fabric (§6) — whole-Coflow, per-flow threshold,
//!   or a per-Coflow byte solver probing the live PRT via
//!   [`DeltaView`].
//!
//! The online, trace-driven variant (rescheduling on Coflow arrivals and
//! completions) lives in the `ocs-sim` crate; this crate is the pure
//! algorithm.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod delta;
pub mod inter;
pub mod intra;
pub mod multicore;
pub mod portset;
pub mod prt;
pub mod split;
pub mod starvation;

pub use delta::{DeltaPlan, DeltaView};
pub use inter::{
    ClassThenShortest, ExplicitOrder, FirstComeFirstServed, InterScheduler, LongestFirst,
    PriorityPolicy, ShortestFirst,
};
pub use intra::{
    schedule_demands, schedule_demands_counted, schedule_demands_on, CoflowSchedule, Demand,
    FlowOrder, IntraScheduler, PlanTable, ScheduleCounters, ScheduleScratch, SunflowConfig,
};
pub use multicore::{
    partition_by_core, CoreAssign, CoreAssignKind, CoreLoad, CorePlan, LeastLoaded, RankPack,
    RoundRobin, StaticHash, ThresholdSplit, UnknownAssignError,
};
pub use portset::PortSet;
pub use prt::{PortProbe, Prt, PrtSnapshot, RemovedResv, ResvKind};
pub use split::{
    NonSplitting, SolverSplit, SplitContext, SplitDecision, SplitKind, SplitPolicy,
    UnknownSplitError,
};
pub use starvation::{GuardConfig, GuardWindow, StarvationGuard};
