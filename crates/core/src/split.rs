//! The demand-routing seam of the hybrid circuit/packet fabric: which
//! bytes of an arriving Coflow ride the Sunflow-scheduled circuit
//! switch, and which the slim packet network.
//!
//! [`SplitPolicy`] generalizes [`CoreAssign`](crate::CoreAssign) — where
//! a core-placement policy routes whole subflows between identical
//! circuit planes, a split policy carves *bytes* between two fabrics
//! with very different service models (circuits pay a reconfiguration
//! delta `δ` but run at full rate; packets start instantly at a fraction
//! of the rate, fair-shared and not Coflow-scheduled). Three policies:
//!
//! * [`NonSplitting`] — whole-Coflow routing, threshold- and
//!   load-aware: a small Coflow goes to the packet network only while
//!   the packet network's estimated finish actually beats the
//!   circuits'.
//! * [`ThresholdSplit`] — the classic per-flow hybrid (c-Through,
//!   Helios, Solstice): small flows → packets, big flows → circuits.
//!   The same struct is the two-"core" [`CoreAssign`](crate::CoreAssign)
//!   policy of the historical `simulate_hybrid`, so the seam stays one
//!   type wide.
//! * [`SolverSplit`] — per-Coflow byte optimization: bisect on the
//!   packet fraction minimizing the max of the two fabrics' estimated
//!   finish times (the circuit finish is non-increasing and the packet
//!   finish non-decreasing in the fraction, so the max is V-shaped and
//!   the balance point is found in `O(log resolution)` probes). The
//!   circuit side's achievable finish is probed against the **live
//!   PRT** through a discarded [`DeltaView`] plan (the probe never
//!   mutates the table), tempered by a preemption-aware queue estimate
//!   so a long planned tail does not scare short Coflows off the
//!   circuits; the packet side is inflated by a 5/4 pessimism factor
//!   because the fair-shared fabric finishes concurrent carves later
//!   than a FIFO drain would.
//!
//! [`SplitKind`] is the selector enum behind the daemon's
//! `--backend hybrid:<split>[:<frac>]` grammar.

use crate::delta::DeltaView;
use crate::intra::{schedule_demands_on, Demand, ScheduleScratch, SunflowConfig};
use crate::multicore::ThresholdSplit;
use crate::prt::Prt;
use ocs_model::{packet_lower_bound, Coflow, DemandSplit, Dur, Fabric, Time};

/// Everything a [`SplitPolicy`] may consult when routing one arriving
/// Coflow: the two fabrics, the live circuit reservation table (when
/// the caller has one), and the packet network's current backlog.
pub struct SplitContext<'a> {
    /// The decision instant (the Coflow's admission time).
    pub now: Time,
    /// The full-rate circuit fabric (bandwidth `B`, delay `δ`).
    pub circuit: &'a Fabric,
    /// The slim packet fabric (a fraction of `B`, `δ` irrelevant).
    pub packet: &'a Fabric,
    /// The circuit side's live port reservation table, for policies
    /// that probe achievable finish times. `None` when the circuit
    /// backend exposes no PRT; probing policies then fall back to the
    /// `δ`-plus-bottleneck estimate.
    pub prt: Option<&'a Prt>,
    /// Aggregate unserved processing time on the packet fabric — the
    /// congestion signal of the load-aware estimates.
    pub packet_outstanding: Dur,
    /// Per-port unserved processing time on the packet fabric (the
    /// larger of each port's transmit and receive queues), for
    /// estimates that resolve *where* the backlog sits. `None` falls
    /// back to spreading `packet_outstanding` evenly across ports.
    pub packet_backlog: Option<&'a [Dur]>,
    /// Probe for the circuit side's *priority queue*: given a new
    /// arrival's remaining bottleneck (its shortest-remaining-first
    /// key), returns the per-port unserved demand of the Coflows that
    /// would outrank it. Unlike the PRT — which only holds the planned
    /// head of the queue — this sees every admitted Coflow's full
    /// remaining demand. `None` falls back to recovering priorities
    /// from the PRT's own reservations.
    pub circuit_queue: Option<&'a dyn Fn(Dur) -> Vec<Dur>>,
    /// Planning configuration for circuit-side probes.
    pub config: SunflowConfig,
}

impl SplitContext<'_> {
    /// Cheap circuit-side finish estimate for routing `coflow` whole:
    /// one reconfiguration `δ` plus the bottleneck-port processing time
    /// at full rate (Eq. 4's shape, ignoring queueing).
    pub fn circuit_estimate(&self, coflow: &Coflow) -> Time {
        self.now + self.circuit.delta() + packet_lower_bound(coflow, self.circuit)
    }

    /// Packet-side finish estimate for routing `coflow` whole: the
    /// bottleneck-port finish on the slim fabric, queueing included.
    ///
    /// With a per-port backlog ([`packet_backlog`](Self::packet_backlog))
    /// the estimate is the max, over the Coflow's own ports, of that
    /// port's existing queue plus the Coflow's own processing time there
    /// — the bytes must drain *behind* whatever already sits on the
    /// ports they use. Without one it falls back to the bottleneck
    /// lower bound plus the average per-port share of the aggregate
    /// backlog.
    pub fn packet_estimate(&self, coflow: &Coflow) -> Time {
        let Some(backlog) = self.packet_backlog else {
            let congestion =
                Dur::from_ps(self.packet_outstanding.as_ps() / self.packet.ports() as u64);
            return self.now + packet_lower_bound(coflow, self.packet) + congestion;
        };
        let ports = self.packet.ports();
        let mut tx = vec![Dur::ZERO; ports];
        let mut rx = vec![Dur::ZERO; ports];
        for f in coflow.flows() {
            let p = self.packet.processing_time(f.bytes);
            tx[f.src] += p;
            rx[f.dst] += p;
        }
        let bottleneck = (0..ports)
            .map(|p| {
                let own = tx[p].max(rx[p]);
                if own == Dur::ZERO {
                    Dur::ZERO
                } else {
                    backlog.get(p).copied().unwrap_or(Dur::ZERO) + own
                }
            })
            .max()
            .unwrap_or(Dur::ZERO);
        self.now + bottleneck
    }
}

/// One routing decision plus how much work it took to reach it.
#[derive(Clone, Debug)]
pub struct SplitDecision {
    /// The per-flow byte carve.
    pub split: DemandSplit,
    /// Candidate splits the policy evaluated (≥ 1).
    pub evals: u64,
}

/// A pluggable demand-routing policy for hybrid fabrics: consulted once
/// per Coflow at admission time, like [`CoreAssign`](crate::CoreAssign)
/// — so load-aware policies see the live fabric state.
pub trait SplitPolicy {
    /// The policy's name, for reports and metric labels.
    fn name(&self) -> &'static str;

    /// Route one arriving Coflow across the two fabrics.
    fn split(&mut self, coflow: &Coflow, ctx: &SplitContext<'_>) -> SplitDecision;
}

// ---------------------------------------------------------------------
// NonSplitting
// ---------------------------------------------------------------------

/// Whole-Coflow routing: a Coflow rides exactly one fabric. Small
/// Coflows (total bytes under the threshold) go to the packet network
/// — but only while its backlog-aware finish estimate actually beats
/// the circuits' `δ`-plus-bottleneck estimate, so a congested (or
/// near-zero-bandwidth) packet network degenerates this policy to pure
/// Sunflow.
#[derive(Clone, Copy, Debug)]
pub struct NonSplitting {
    /// Coflows with fewer total bytes than this are packet candidates.
    pub threshold: u64,
}

impl NonSplitting {
    /// A whole-Coflow policy with the given smallness threshold.
    pub fn new(threshold: u64) -> NonSplitting {
        NonSplitting { threshold }
    }
}

impl SplitPolicy for NonSplitting {
    fn name(&self) -> &'static str {
        "non-splitting"
    }

    fn split(&mut self, coflow: &Coflow, ctx: &SplitContext<'_>) -> SplitDecision {
        let small = coflow.total_bytes() < self.threshold;
        let split = if small && ctx.packet_estimate(coflow) <= ctx.circuit_estimate(coflow) {
            DemandSplit::all_packet(coflow)
        } else {
            DemandSplit::all_circuit(coflow)
        };
        SplitDecision { split, evals: 1 }
    }
}

// ---------------------------------------------------------------------
// ThresholdSplit (ported from the historical simulate_hybrid)
// ---------------------------------------------------------------------

impl SplitPolicy for ThresholdSplit {
    fn name(&self) -> &'static str {
        "threshold"
    }

    fn split(&mut self, coflow: &Coflow, _ctx: &SplitContext<'_>) -> SplitDecision {
        SplitDecision {
            split: DemandSplit::by_flow_threshold(coflow, self.threshold),
            evals: 1,
        }
    }
}

// ---------------------------------------------------------------------
// SolverSplit
// ---------------------------------------------------------------------

/// Per-Coflow byte optimization: find the packet fraction minimizing
/// `max(circuit finish, packet finish)` by bisection.
///
/// Moving bytes to the packet fabric can only shrink the circuit-side
/// finish and grow the packet-side one, so the max of the two is
/// V-shaped in the fraction and its minimum sits where the curves
/// cross. The solver evaluates both pure endpoints, then bisects on
/// the sign of `circuit − packet` down to a `1/resolution` byte
/// granularity — `2 + log2(resolution)` probes per Coflow, fine enough
/// to find the balance point even when the fabrics' rates differ by an
/// order of magnitude (at 10% packet bandwidth the useful carves
/// cluster below `f ≈ 1/11`, invisible to any coarse uniform ladder).
///
/// The circuit estimate is a *probe* of the live PRT (see
/// [`probe_circuit`](Self::probe_circuit)); the packet estimate is the
/// slim fabric's per-port backlog plus the carve's own processing time
/// (see [`SplitContext::packet_estimate`]).
pub struct SolverSplit {
    /// Byte-fraction denominator of the bisection (candidates are
    /// `num/resolution`); the search costs `2 + ⌈log2(resolution)⌉`
    /// estimate evaluations per Coflow.
    pub resolution: u64,
    scratch: ScheduleScratch,
}

impl SolverSplit {
    /// A solver policy bisecting packet fractions at `1/resolution`
    /// byte granularity.
    pub fn new(resolution: u64) -> SolverSplit {
        assert!(resolution >= 2, "need at least fractions 0, 1/2 and 1");
        SolverSplit {
            resolution,
            scratch: ScheduleScratch::default(),
        }
    }

    /// Probe the finish time the circuit side can achieve for `part`
    /// given every reservation already in `prt`.
    ///
    /// Two estimates, and the probe keeps the smaller:
    ///
    /// * **Plan-around**: `part`'s demands are planned against the live
    ///   PRT through a [`DeltaView`] and the plan is discarded —
    ///   Algorithm 1 runs for real, around every existing reservation.
    ///   Exact if nothing replans, but *pessimistic* under priority
    ///   scheduling: a congested PRT pushes the plan to the tail even
    ///   when the real stepper would reorder in `part`'s favor at the
    ///   next replan.
    /// * **Preemption-aware queue**: only reservations owned by Coflows
    ///   that would outrank `part` (shorter remaining bottleneck — the
    ///   shortest-first key, recovered from each Coflow's own reserved
    ///   time) count as queueing; `part` then pays `δ` plus that
    ///   higher-priority load plus its own bottleneck time.
    ///
    /// Without the second estimate the solver death-spirals under load:
    /// plan-around reports near-makespan finishes for *every* arrival,
    /// so everything flees to the slim packet fabric and drowns it.
    fn probe_circuit(&mut self, part: &Coflow, ctx: &SplitContext<'_>) -> Time {
        let Some(prt) = ctx.prt else {
            return ctx.circuit_estimate(part);
        };
        let planned = self.probe_plan(part, ctx, prt);
        planned.min(Self::preemptive_estimate(part, prt, ctx))
    }

    /// The plan-around half of [`probe_circuit`](Self::probe_circuit).
    fn probe_plan(&mut self, part: &Coflow, ctx: &SplitContext<'_>, prt: &Prt) -> Time {
        let demands: Vec<Demand> = part
            .flows()
            .iter()
            .enumerate()
            .map(|(i, f)| Demand {
                flow_idx: i,
                src: f.src,
                dst: f.dst,
                remaining: ctx.circuit.processing_time(f.bytes),
            })
            .collect();
        let mut view = DeltaView::new(prt, ctx.now);
        view.seal();
        let (resvs, _) = schedule_demands_on(
            &mut view,
            part.id(),
            &demands,
            ctx.now,
            ctx.circuit.delta(),
            ctx.config,
            &mut self.scratch,
        );
        resvs.iter().map(|r| r.end).max().unwrap_or(ctx.now)
    }

    /// The preemption-aware half of [`probe_circuit`](Self::probe_circuit):
    /// `δ` plus, on `part`'s bottleneck port, the remaining reserved time
    /// of Coflows that outrank it plus `part`'s own processing time.
    ///
    /// A live Coflow's shortest-first key is recovered from the PRT
    /// itself — its remaining bottleneck-port reserved time *is* its
    /// remaining `T_pL` — so the estimate needs no channel to the
    /// circuit stepper's internal queue. Ties count as outranking
    /// (earlier arrivals win them).
    fn preemptive_estimate(part: &Coflow, prt: &Prt, ctx: &SplitContext<'_>) -> Time {
        let now = ctx.now;
        let ports = ctx.circuit.ports();
        let own_key = packet_lower_bound(part, ctx.circuit);
        let mut own_tx = vec![Dur::ZERO; ports];
        let mut own_rx = vec![Dur::ZERO; ports];
        for f in part.flows() {
            let p = ctx.circuit.processing_time(f.bytes);
            own_tx[f.src] += p;
            own_rx[f.dst] += p;
        }
        // The live queue probe sees every admitted Coflow's remaining
        // demand; the PRT fallback below only the planned head.
        if let Some(queue) = ctx.circuit_queue {
            let hp = queue(own_key);
            let bottleneck = (0..ports)
                .map(|p| {
                    let own = own_tx[p].max(own_rx[p]);
                    if own == Dur::ZERO {
                        Dur::ZERO
                    } else {
                        own + hp.get(p).copied().unwrap_or(Dur::ZERO)
                    }
                })
                .max()
                .unwrap_or(Dur::ZERO);
            return now + ctx.circuit.delta() + bottleneck;
        }
        let live: Vec<_> = prt.iter_reservations().filter(|r| r.end > now).collect();
        // Remaining reserved time per (coflow, port); the per-Coflow max
        // over ports is that Coflow's remaining bottleneck key.
        let mut per: std::collections::HashMap<(u64, usize), Dur> =
            std::collections::HashMap::new();
        for r in &live {
            let d = r.end.since(r.start.max(now));
            *per.entry((r.flow.coflow, r.src)).or_insert(Dur::ZERO) += d;
            *per.entry((r.flow.coflow, ports + r.dst))
                .or_insert(Dur::ZERO) += d;
        }
        let mut key: std::collections::HashMap<u64, Dur> = std::collections::HashMap::new();
        for (&(c, _), &d) in &per {
            let e = key.entry(c).or_insert(Dur::ZERO);
            *e = (*e).max(d);
        }
        let mut tx = vec![Dur::ZERO; ports];
        let mut rx = vec![Dur::ZERO; ports];
        for r in &live {
            if key.get(&r.flow.coflow).copied().unwrap_or(Dur::ZERO) <= own_key {
                let d = r.end.since(r.start.max(now));
                tx[r.src] += d;
                rx[r.dst] += d;
            }
        }
        let bottleneck = (0..ports)
            .map(|p| {
                let own = own_tx[p].max(own_rx[p]);
                if own == Dur::ZERO {
                    Dur::ZERO
                } else {
                    own + tx[p].max(rx[p])
                }
            })
            .max()
            .unwrap_or(Dur::ZERO);
        now + ctx.circuit.delta() + bottleneck
    }
}

impl SplitPolicy for SolverSplit {
    fn name(&self) -> &'static str {
        "solver"
    }

    fn split(&mut self, coflow: &Coflow, ctx: &SplitContext<'_>) -> SplitDecision {
        let den = self.resolution;
        let mut evals = 0u64;
        // Best candidate so far; ties prefer the smaller packet
        // fraction — circuits are the scheduled fabric, packets the
        // escape hatch.
        let mut best: Option<(Time, u64, DemandSplit)> = None;
        let candidate = |policy: &mut SolverSplit,
                         num: u64,
                         best: &mut Option<(Time, u64, DemandSplit)>|
         -> (Time, Time) {
            let split = DemandSplit::by_packet_fraction(coflow, num, den);
            let parts = split.carve(coflow);
            let circuit = match &parts.circuit {
                Some(part) => policy.probe_circuit(part, ctx),
                None => ctx.now,
            };
            let packet = match &parts.packet {
                // The packet fabric is fair-shared, not FIFO: a carve's
                // bytes do not drain *behind* the backlog, they share
                // rate with it, so concurrent carves all finish near
                // the full-drain time — later than `queue + own`. And
                // the estimate cannot see future arrivals at all.
                // Inflate the packet side by 5/4 so only carves with
                // real margin leave the circuits.
                Some(part) => {
                    let est = ctx.packet_estimate(part).since(ctx.now);
                    ctx.now + Dur::from_ps((est.as_ps() / 4).saturating_mul(5))
                }
                None => ctx.now,
            };
            let finish = circuit.max(packet);
            if best
                .as_ref()
                .is_none_or(|(b, bn, _)| finish < *b || (finish == *b && num < *bn))
            {
                *best = Some((finish, num, split));
            }
            (circuit, packet)
        };
        candidate(self, 0, &mut best);
        candidate(self, den, &mut best);
        evals += 2;
        // Bisect on the sign of circuit − packet: the circuit finish is
        // non-increasing and the packet finish non-decreasing in the
        // fraction, so their max bottoms out where they cross.
        let (mut lo, mut hi) = (0u64, den);
        while hi - lo > 1 {
            let mid = lo + (hi - lo) / 2;
            let (circuit, packet) = candidate(self, mid, &mut best);
            evals += 1;
            if circuit > packet {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        SplitDecision {
            split: best.expect("at least one candidate").2,
            evals,
        }
    }
}

// ---------------------------------------------------------------------
// SplitKind
// ---------------------------------------------------------------------

/// A `hybrid:<split>` selector that no [`SplitKind`] answers to.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UnknownSplitError {
    /// The rejected selector.
    pub input: String,
}

impl std::fmt::Display for UnknownSplitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "unknown split policy '{}' (expected one of: non-splitting, threshold, solver)",
            self.input
        )
    }
}

impl std::error::Error for UnknownSplitError {}

/// Every selectable [`SplitPolicy`], by name — the `<split>` parameter
/// of the daemon's `--backend hybrid:<split>[:<frac>]` selector.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SplitKind {
    /// [`NonSplitting`] — whole-Coflow, threshold- and load-aware.
    NonSplitting,
    /// [`ThresholdSplit`] — small flows → packets (the classic hybrid).
    Threshold,
    /// [`SolverSplit`] — per-Coflow byte split minimizing the max of
    /// the two fabrics' estimated finish times.
    Solver,
}

impl SplitKind {
    /// Every split policy, in display order.
    pub const ALL: [SplitKind; 3] = [
        SplitKind::NonSplitting,
        SplitKind::Threshold,
        SplitKind::Solver,
    ];

    /// The policy's canonical selector name.
    pub fn name(&self) -> &'static str {
        match self {
            SplitKind::NonSplitting => "non-splitting",
            SplitKind::Threshold => "threshold",
            SplitKind::Solver => "solver",
        }
    }

    /// Construct the policy. `threshold` feeds the smallness cutoffs of
    /// [`NonSplitting`] and [`ThresholdSplit`]; the solver ignores it.
    pub fn build(&self, threshold: u64) -> Box<dyn SplitPolicy + Send> {
        match self {
            SplitKind::NonSplitting => Box::new(NonSplitting::new(threshold)),
            SplitKind::Threshold => Box::new(ThresholdSplit::new(threshold)),
            SplitKind::Solver => Box::new(SolverSplit::new(1024)),
        }
    }
}

impl std::str::FromStr for SplitKind {
    type Err = UnknownSplitError;

    fn from_str(s: &str) -> Result<SplitKind, UnknownSplitError> {
        match s.to_ascii_lowercase().as_str() {
            "non-splitting" | "nonsplitting" | "whole" => Ok(SplitKind::NonSplitting),
            "threshold" => Ok(SplitKind::Threshold),
            "solver" => Ok(SplitKind::Solver),
            _ => Err(UnknownSplitError {
                input: s.to_string(),
            }),
        }
    }
}

impl std::fmt::Display for SplitKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ocs_model::Bandwidth;

    fn fabrics() -> (Fabric, Fabric) {
        let circuit = Fabric::new(4, Bandwidth::GBPS, Dur::from_millis(10));
        let packet = Fabric::new(4, Bandwidth::from_bps(100_000_000), Dur::ZERO);
        (circuit, packet)
    }

    fn ctx<'a>(circuit: &'a Fabric, packet: &'a Fabric, prt: Option<&'a Prt>) -> SplitContext<'a> {
        SplitContext {
            now: Time::ZERO,
            circuit,
            packet,
            prt,
            packet_outstanding: Dur::ZERO,
            packet_backlog: None,
            circuit_queue: None,
            config: SunflowConfig::default(),
        }
    }

    fn mb(m: u64) -> u64 {
        m * (1 << 20)
    }

    #[test]
    fn non_splitting_routes_whole_coflows_by_estimates() {
        let (circuit, packet) = fabrics();
        let ctx = ctx(&circuit, &packet, None);
        let mut policy = NonSplitting::new(mb(2));
        // 1 MB: circuit δ (10 ms) + ~8.4 ms beats packet ~84 ms →
        // circuits even though it is "small".
        let small = Coflow::builder(0).flow(0, 1, mb(1)).build();
        assert!(policy.split(&small, &ctx).split.is_pure_circuit());
        // Same Coflow on a slow switch (δ = 1 s): packets win.
        let slow = Fabric::new(4, Bandwidth::GBPS, Dur::from_secs_f64(1.0));
        let slow_ctx = super::SplitContext {
            circuit: &slow,
            ..ctx
        };
        assert!(policy.split(&small, &slow_ctx).split.is_pure_packet());
        // Big Coflows never leave the circuits, whatever the estimates.
        let big = Coflow::builder(1).flow(0, 1, mb(50)).build();
        assert!(policy.split(&big, &slow_ctx).split.is_pure_circuit());
    }

    #[test]
    fn threshold_split_ports_the_classic_hybrid() {
        let (circuit, packet) = fabrics();
        let ctx = ctx(&circuit, &packet, None);
        let mut policy = ThresholdSplit::new(mb(2));
        let mixed = Coflow::builder(0)
            .flow(0, 0, mb(1))
            .flow(1, 1, mb(50))
            .build();
        let d = policy.split(&mixed, &ctx);
        assert_eq!(d.split.packet_subflows(), 1);
        assert_eq!(d.split.circuit_subflows(), 1);
        assert_eq!(d.split.bytes_to_packet(), mb(1));
        assert_eq!(SplitPolicy::name(&policy), "threshold");
    }

    #[test]
    fn solver_offloads_when_the_prt_is_congested() {
        let (circuit, packet) = fabrics();
        let mut solver = SolverSplit::new(4);
        // Idle PRT: the probe sees a free fabric; δ + 8 ms beats 84 ms
        // on packets, so everything stays on circuits.
        let small = Coflow::builder(0).flow(0, 1, mb(1)).build();
        let idle = Prt::new(4);
        let d = solver.split(&small, &ctx(&circuit, &packet, Some(&idle)));
        assert!(d.split.is_pure_circuit(), "{:?}", d.split);
        assert_eq!(d.evals, 4);
        // A 10 s blocker on ports (0, 1) owned by one long Coflow: the
        // small Coflow outranks it under shortest-first (the stepper
        // would reorder at the next replan), so it *stays* on circuits —
        // the preemption-aware estimate sees through the occupancy.
        let mut blocked = Prt::new(4);
        blocked.reserve(
            0,
            1,
            Time::ZERO,
            Time::from_secs_f64(10.0),
            crate::prt::ResvKind::Flow(ocs_model::FlowRef {
                coflow: 99,
                flow_idx: 0,
            }),
        );
        let d = solver.split(&small, &ctx(&circuit, &packet, Some(&blocked)));
        assert!(d.split.is_pure_circuit(), "{:?}", d.split);
        // 20 s of back-to-back occupancy owned by a hundred *short*
        // Coflows (200 ms remaining each — every one outranks a 100 MB
        // candidate): any circuit bytes wait behind all of them plus δ,
        // and the ~8.4 s packet-side finish wins outright.
        let mut congested = Prt::new(4);
        for i in 0..100u64 {
            let start = Time::from_secs_f64(i as f64 * 0.2);
            congested.reserve(
                0,
                1,
                start,
                start + Dur::from_millis(200),
                crate::prt::ResvKind::Flow(ocs_model::FlowRef {
                    coflow: 100 + i,
                    flow_idx: 0,
                }),
            );
        }
        let big = Coflow::builder(1).flow(0, 1, mb(100)).build();
        let d = solver.split(&big, &ctx(&circuit, &packet, Some(&congested)));
        assert!(d.split.is_pure_packet(), "{:?}", d.split);
    }

    #[test]
    fn split_kind_parses_and_builds() {
        for kind in SplitKind::ALL {
            let parsed: SplitKind = kind.name().parse().expect("canonical name parses");
            assert_eq!(parsed, kind);
            let policy = kind.build(mb(2));
            assert_eq!(policy.name(), kind.name());
        }
        assert_eq!("whole".parse::<SplitKind>(), Ok(SplitKind::NonSplitting));
        let err = "bogus".parse::<SplitKind>().unwrap_err();
        assert!(err.to_string().contains("bogus"));
    }
}
