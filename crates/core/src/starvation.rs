//! Starvation avoidance (§4.2 of the paper).
//!
//! Strict priority lets high-priority Coflows block low-priority ones
//! indefinitely — a problem if, say, a malicious tenant keeps submitting
//! small Coflows. The paper's lightweight fix: a fixed list of `N`
//! assignments `Φ = {A_1, …, A_N}` that together cover all `N²` circuits,
//! and two parameters `T ≫ τ > δ`. Time is divided into recurring
//! `(T + τ)` intervals: during the `T` part, normal inter-Coflow
//! scheduling runs; during the `τ` part, the assignment `A_k` (round
//! robin over `Φ`) is configured and **all** Coflows with demand on its
//! circuits share the link bandwidth. Every Coflow therefore receives
//! non-zero service within every `N·(T + τ)` of its lifetime.
//!
//! We realize `Φ` as the `N` cyclic-shift permutations
//! (`in.i → out.(i+k mod N)`), which provably cover every circuit.
//! Guard windows are seeded into the PRT as [`ResvKind::Guard`]
//! reservations; Algorithm 1 then schedules around them without any
//! modification — to the intra-Coflow routine they are simply port
//! reservations it must not displace.

use crate::prt::{Prt, ResvKind};
use ocs_model::{Assignment, Dur, Time};

/// Parameters of the starvation guard: `T` (normal scheduling) and `τ`
/// (shared round-robin window) per recurring interval.
///
/// Construct with [`GuardConfig::new`] (the struct is
/// `#[non_exhaustive]`, so struct literals do not compile outside this
/// crate):
///
/// ```
/// use sunflow_core::GuardConfig;
/// use ocs_model::Dur;
///
/// let g = GuardConfig::new(Dur::from_millis(100), Dur::from_millis(30));
/// assert_eq!(g.tau, Dur::from_millis(30));
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub struct GuardConfig {
    /// Length of the priority-scheduled part of each interval (`T`).
    pub period: Dur,
    /// Length of the shared round-robin window (`τ`). Must exceed the
    /// reconfiguration delay `δ` or the window could transmit nothing.
    pub tau: Dur,
}

impl GuardConfig {
    /// A guard running normal scheduling for `period` (`T`) followed by
    /// a `tau` (`τ`) shared window, per recurring interval.
    pub fn new(period: Dur, tau: Dur) -> GuardConfig {
        GuardConfig { period, tau }
    }

    /// Set the priority-scheduled part (`T`).
    pub fn period(mut self, period: Dur) -> GuardConfig {
        self.period = period;
        self
    }

    /// Set the shared-window length (`τ`).
    pub fn tau(mut self, tau: Dur) -> GuardConfig {
        self.tau = tau;
        self
    }

    /// Validate against a fabric's `δ`: the paper requires `T ≫ τ > δ`.
    ///
    /// # Panics
    /// Panics if `τ <= δ` or `T < τ`.
    pub fn validate(&self, delta: Dur) {
        assert!(self.tau > delta, "guard window τ must exceed δ");
        assert!(self.period >= self.tau, "T must dominate τ");
    }
}

/// One concrete guard window on the timeline.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GuardWindow {
    /// Window start (ports taken, reconfiguration begins).
    pub start: Time,
    /// Window end (ports released).
    pub end: Time,
    /// Index of the interval this window belongs to.
    pub interval: u64,
    /// The assignment `A_k` configured during the window.
    pub assignment: Assignment,
}

impl GuardWindow {
    /// Transmit time available on each circuit of the window:
    /// `τ − δ`.
    pub fn transmit_time(&self, delta: Dur) -> Dur {
        self.end.since(self.start).saturating_sub(delta)
    }
}

/// Generator of guard windows for an `n`-port fabric.
#[derive(Clone, Copy, Debug)]
pub struct StarvationGuard {
    config: GuardConfig,
    ports: usize,
}

impl StarvationGuard {
    /// Create a guard for an `n`-port fabric.
    ///
    /// # Panics
    /// Panics if `n` is zero or the configuration is degenerate
    /// (`τ` or `T` zero).
    pub fn new(ports: usize, config: GuardConfig) -> StarvationGuard {
        assert!(ports > 0, "guard needs at least one port");
        assert!(!config.tau.is_zero() && !config.period.is_zero());
        StarvationGuard { config, ports }
    }

    /// The guard's configuration.
    pub fn config(&self) -> GuardConfig {
        self.config
    }

    /// Length of one full interval, `T + τ`.
    pub fn interval_len(&self) -> Dur {
        self.config.period + self.config.tau
    }

    /// The guard window of interval `m`:
    /// `[m(T+τ) + T, (m+1)(T+τ))` with assignment `A_(m mod N)`.
    pub fn window(&self, m: u64) -> GuardWindow {
        let base = Time::ZERO + self.interval_len() * m;
        let start = base + self.config.period;
        let end = start + self.config.tau;
        GuardWindow {
            start,
            end,
            interval: m,
            assignment: Assignment::cyclic_shift(self.ports, (m % self.ports as u64) as usize),
        }
    }

    /// All guard windows overlapping `[from, until)`, in order.
    pub fn windows_in(&self, from: Time, until: Time) -> Vec<GuardWindow> {
        if until <= from {
            return Vec::new();
        }
        let ilen = self.interval_len().as_ps();
        let first = from.as_ps() / ilen;
        let mut out = Vec::new();
        let mut m = first.saturating_sub(1); // window of interval m-1 may straddle `from`
        loop {
            let w = self.window(m);
            if w.start >= until {
                break;
            }
            if w.end > from {
                out.push(w);
            }
            m += 1;
        }
        out
    }

    /// The first guard-window end at or after `t` (the next natural
    /// rescheduling point for the online replay).
    pub fn next_window_end_after(&self, t: Time) -> Time {
        let ilen = self.interval_len().as_ps();
        let m = t.as_ps() / ilen;
        let w = self.window(m);
        if w.end > t {
            w.end
        } else {
            self.window(m + 1).end
        }
    }

    /// Seed every guard window overlapping `[from, until)` into the PRT as
    /// `Guard` reservations on all of the window's circuits. Windows whose
    /// start precedes `from` are skipped (the caller has already settled
    /// them); normal scheduling will then flow around the seeded windows.
    pub fn seed_prt(&self, prt: &mut Prt, from: Time, until: Time) {
        assert_eq!(prt.ports(), self.ports, "PRT port count mismatch");
        for w in self.windows_in(from, until) {
            if w.start < from {
                continue;
            }
            for &(i, j) in w.assignment.pairs() {
                prt.reserve(i, j, w.start, w.end, ResvKind::Guard);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn guard() -> StarvationGuard {
        StarvationGuard::new(
            4,
            GuardConfig::new(Dur::from_millis(100), Dur::from_millis(20)),
        )
    }

    #[test]
    fn windows_tile_the_timeline() {
        let g = guard();
        let w0 = g.window(0);
        assert_eq!(w0.start, Time::from_millis(100));
        assert_eq!(w0.end, Time::from_millis(120));
        let w1 = g.window(1);
        assert_eq!(w1.start, Time::from_millis(220));
        assert_eq!(w1.interval, 1);
    }

    #[test]
    fn round_robin_covers_all_circuits_in_n_intervals() {
        let g = guard();
        let mut seen = [false; 16];
        for m in 0..4 {
            for &(i, j) in g.window(m).assignment.pairs() {
                seen[i * 4 + j] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
        // And the cycle repeats.
        assert_eq!(g.window(0).assignment, g.window(4).assignment);
    }

    #[test]
    fn windows_in_selects_overlaps() {
        let g = guard();
        // [0, 100) contains no window; [0, 101) clips window 0.
        assert!(g.windows_in(Time::ZERO, Time::from_millis(100)).is_empty());
        assert_eq!(g.windows_in(Time::ZERO, Time::from_millis(101)).len(), 1);
        // A range starting inside window 0 still reports it.
        let ws = g.windows_in(Time::from_millis(110), Time::from_millis(360));
        assert_eq!(ws.len(), 3);
        assert_eq!(ws[0].interval, 0);
        assert_eq!(ws[2].interval, 2);
    }

    #[test]
    fn next_window_end() {
        let g = guard();
        assert_eq!(g.next_window_end_after(Time::ZERO), Time::from_millis(120));
        assert_eq!(
            g.next_window_end_after(Time::from_millis(120)),
            Time::from_millis(240)
        );
        assert_eq!(
            g.next_window_end_after(Time::from_millis(119)),
            Time::from_millis(120)
        );
    }

    #[test]
    fn seeding_blocks_all_ports_during_window() {
        let g = guard();
        let mut prt = Prt::new(4);
        g.seed_prt(&mut prt, Time::ZERO, Time::from_millis(240));
        for p in 0..4 {
            assert!(!prt.in_free_at(p, Time::from_millis(110)));
            assert!(!prt.out_free_at(p, Time::from_millis(110)));
            assert!(prt.in_free_at(p, Time::from_millis(50)));
        }
        // Guard reservations are not flow reservations.
        assert!(prt.flow_reservations().is_empty());
    }

    #[test]
    fn transmit_time_subtracts_delta() {
        let g = guard();
        let w = g.window(0);
        assert_eq!(w.transmit_time(Dur::from_millis(10)), Dur::from_millis(10));
    }

    #[test]
    #[should_panic(expected = "must exceed")]
    fn tau_not_exceeding_delta_is_rejected() {
        GuardConfig::new(Dur::from_millis(100), Dur::from_millis(5)).validate(Dur::from_millis(10));
    }
}
