//! Equivalence property tests for the per-Coflow reservation index and
//! the tail-walking `truncate_future` fast path: after any legal
//! sequence of reserves, truncations and cuts across several Coflows,
//!
//! * the union of `reservations_of` over all Coflows must equal
//!   `flow_reservations()` (the full-table scan),
//! * `last_end_of` must agree with the naive max-scan, and
//! * `truncate_future` must leave the table in exactly the state the
//!   naive collect-every-key reference (`naive_truncate_future`) does,
//!   reporting the same removed set.

use ocs_model::{FlowRef, Reservation, Time};
use proptest::prelude::*;
use sunflow_core::{Prt, ResvKind};

const COFLOWS: u64 = 5;

#[derive(Clone, Debug)]
enum Op {
    /// Try to reserve (coflow, src, dst, start_ms, len_ms); skipped if
    /// illegal.
    Reserve(u64, usize, usize, u64, u64),
    /// Truncate the future at now_ms; the flag keeps in-flight circuits.
    Truncate(u64, bool),
    /// Cut the k-th in-flight reservation (if any) at now_ms.
    Cut(usize, u64),
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![
            (0u64..COFLOWS, 0usize..4, 0usize..4, 0u64..200, 1u64..60)
                .prop_map(|(c, s, d, t, l)| Op::Reserve(c, s, d, t, l)),
            (0u64..COFLOWS, 0usize..4, 0usize..4, 0u64..200, 1u64..60)
                .prop_map(|(c, s, d, t, l)| Op::Reserve(c, s, d, t, l)),
            (0u64..250, any::<bool>()).prop_map(|(t, k)| Op::Truncate(t, k)),
            (0usize..8, 1u64..250).prop_map(|(k, t)| Op::Cut(k, t)),
        ],
        1..60,
    )
}

fn legal_reserve(prt: &Prt, src: usize, dst: usize, start: Time, end: Time) -> bool {
    prt.in_free_at(src, start)
        && prt.out_free_at(dst, start)
        && end <= prt.in_next_start_after(src, start)
        && end <= prt.out_next_start_after(dst, start)
}

fn by_port_order(mut v: Vec<Reservation>) -> Vec<Reservation> {
    v.sort_by_key(|r| (r.src, r.start));
    v
}

/// The index must partition the full scan: per-Coflow slices contain only
/// that Coflow, their union is everything, and the latest-end shortcut
/// agrees with the naive max.
fn assert_index_agreement(prt: &Prt) -> Result<(), TestCaseError> {
    let mut union: Vec<Reservation> = Vec::new();
    for c in 0..COFLOWS {
        let of_c: Vec<Reservation> = prt.reservations_of(c).collect();
        for r in &of_c {
            prop_assert_eq!(r.flow.coflow, c, "index leaked a foreign reservation");
        }
        prop_assert_eq!(
            by_port_order(of_c.clone()),
            by_port_order(prt.naive_reservations_of(c)),
            "reservations_of({}) diverged from the full scan",
            c
        );
        prop_assert_eq!(
            prt.last_end_of(c),
            prt.naive_last_end_of(c),
            "last_end_of({}) diverged from the naive max",
            c
        );
        union.extend(of_c);
    }
    prop_assert_eq!(
        by_port_order(union),
        by_port_order(prt.flow_reservations()),
        "union over coflows is not the whole table"
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// After every mutation the incremental per-Coflow index answers
    /// exactly like the full-table scans, and the backward-walking
    /// truncation matches the naive reference op-for-op (same removed
    /// list, same surviving table).
    #[test]
    fn index_and_truncation_match_naive(ops in arb_ops()) {
        let mut prt = Prt::new(4);
        let mut flow_counter = 0usize;
        for op in ops {
            match op {
                Op::Reserve(coflow, src, dst, t, l) => {
                    let start = Time::from_millis(t);
                    let end = Time::from_millis(t + l);
                    if legal_reserve(&prt, src, dst, start, end) {
                        flow_counter += 1;
                        prt.reserve(
                            src,
                            dst,
                            start,
                            end,
                            ResvKind::Flow(FlowRef { coflow, flow_idx: flow_counter }),
                        );
                    }
                }
                Op::Truncate(t, keep_active) => {
                    let now = Time::from_millis(t);
                    let mut reference = prt.clone();
                    let removed_naive = reference.naive_truncate_future(now, keep_active);
                    let removed_fast = prt.truncate_future(now, keep_active);
                    prop_assert_eq!(
                        removed_fast,
                        removed_naive,
                        "truncate_future({:?}, {}) removed a different set",
                        now,
                        keep_active
                    );
                    prop_assert_eq!(
                        prt.all_reservations(),
                        reference.all_reservations(),
                        "fast and naive truncation left different tables"
                    );
                    prop_assert_eq!(prt.horizon(), reference.horizon());
                }
                Op::Cut(k, t) => {
                    let now = Time::from_millis(t);
                    let in_flight: Vec<Reservation> = prt
                        .flow_reservations()
                        .into_iter()
                        .filter(|r| r.start < now && now < r.end)
                        .collect();
                    if !in_flight.is_empty() {
                        let r = &in_flight[k % in_flight.len()];
                        prt.cut_reservation(r.src, r.start, now);
                    }
                }
            }
            assert_index_agreement(&prt).unwrap();
        }
    }
}
