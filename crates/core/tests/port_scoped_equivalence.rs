//! Equivalence property tests for the port-scoped scheduling machinery:
//! the per-port release queues, Coflow port footprints and the
//! dirty-port indexed `schedule_demands` must answer exactly like their
//! scan-everything `naive_*` twins after any legal mutation sequence.
//!
//! Compiled against the `naive-twins` feature via the crate's
//! self-dev-dependency, like `prt_index_equivalence.rs`.

use ocs_model::{Dur, FlowRef, Time};
use proptest::prelude::*;
use sunflow_core::{schedule_demands, Demand, FlowOrder, PortSet, Prt, ResvKind, SunflowConfig};

const COFLOWS: u64 = 5;
const PORTS: usize = 4;

#[derive(Clone, Debug)]
enum Op {
    /// Try to reserve (coflow, src, dst, start_ms, len_ms); skipped if
    /// illegal.
    Reserve(u64, usize, usize, u64, u64),
    /// Truncate the future at now_ms; the flag keeps in-flight circuits.
    Truncate(u64, bool),
    /// Cut the k-th in-flight reservation (if any) at now_ms.
    Cut(usize, u64),
    /// Truncate only one Coflow's future at now_ms.
    TruncateOf(u64, u64),
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![
            (
                0u64..COFLOWS,
                0usize..PORTS,
                0usize..PORTS,
                0u64..200,
                1u64..60
            )
                .prop_map(|(c, s, d, t, l)| Op::Reserve(c, s, d, t, l)),
            (
                0u64..COFLOWS,
                0usize..PORTS,
                0usize..PORTS,
                0u64..200,
                1u64..60
            )
                .prop_map(|(c, s, d, t, l)| Op::Reserve(c, s, d, t, l)),
            (
                0u64..COFLOWS,
                0usize..PORTS,
                0usize..PORTS,
                0u64..200,
                1u64..60
            )
                .prop_map(|(c, s, d, t, l)| Op::Reserve(c, s, d, t, l)),
            (0u64..250, any::<bool>()).prop_map(|(t, k)| Op::Truncate(t, k)),
            (0usize..8, 1u64..250).prop_map(|(k, t)| Op::Cut(k, t)),
            (0u64..COFLOWS, 0u64..250).prop_map(|(c, t)| Op::TruncateOf(c, t)),
        ],
        1..50,
    )
}

fn legal_reserve(prt: &Prt, src: usize, dst: usize, start: Time, end: Time) -> bool {
    prt.in_free_at(src, start)
        && prt.out_free_at(dst, start)
        && end <= prt.in_next_start_after(src, start)
        && end <= prt.out_next_start_after(dst, start)
}

/// Scoped release queries and footprints must agree with the full scans
/// at a spread of probe times and port subsets.
fn assert_scoped_queries_agree(prt: &Prt) -> Result<(), TestCaseError> {
    let probes = [0u64, 1, 50, 100, 199, 260].map(Time::from_millis);
    for p in 0..PORTS {
        for t in probes {
            prop_assert_eq!(
                prt.in_next_release_after(p, t),
                prt.naive_in_next_release_after(p, t),
                "in-release query diverged on port {} at {:?}",
                p,
                t
            );
            prop_assert_eq!(
                prt.out_next_release_after(p, t),
                prt.naive_out_next_release_after(p, t),
                "out-release query diverged on port {} at {:?}",
                p,
                t
            );
        }
    }
    // A few port subsets, including empty and everything.
    let mut subsets = vec![
        PortSet::new(PORTS),
        PortSet::new(PORTS),
        PortSet::new(PORTS),
    ];
    for p in 0..PORTS {
        subsets[1].insert_in(p);
        subsets[1].insert_out(p);
        if p % 2 == 0 {
            subsets[2].insert_in(p);
        } else {
            subsets[2].insert_out(p);
        }
    }
    for ps in &subsets {
        for t in probes {
            prop_assert_eq!(
                prt.next_release_on(ps, t),
                prt.naive_next_release_on(ps, t),
                "scoped next-release diverged at {:?}",
                t
            );
        }
    }
    for c in 0..COFLOWS {
        prop_assert_eq!(
            prt.footprint_of(c),
            prt.naive_footprint_of(c),
            "footprint of coflow {} diverged from the full scan",
            c
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The per-port release queues and footprint multisets stay in sync
    /// with the table through reserves, truncations (global and
    /// per-Coflow) and cuts.
    #[test]
    fn scoped_queries_match_naive(ops in arb_ops()) {
        let mut prt = Prt::new(PORTS);
        let mut flow_counter = 0usize;
        for op in ops {
            match op {
                Op::Reserve(coflow, src, dst, t, l) => {
                    let start = Time::from_millis(t);
                    let end = Time::from_millis(t + l);
                    if legal_reserve(&prt, src, dst, start, end) {
                        flow_counter += 1;
                        prt.reserve(
                            src,
                            dst,
                            start,
                            end,
                            ResvKind::Flow(FlowRef { coflow, flow_idx: flow_counter }),
                        );
                    }
                }
                Op::Truncate(t, keep_active) => {
                    prt.truncate_future(Time::from_millis(t), keep_active);
                }
                Op::Cut(k, t) => {
                    let now = Time::from_millis(t);
                    let in_flight: Vec<_> = prt
                        .flow_reservations()
                        .into_iter()
                        .filter(|r| r.start < now && now < r.end)
                        .collect();
                    if !in_flight.is_empty() {
                        let r = &in_flight[k % in_flight.len()];
                        prt.cut_reservation(r.src, r.start, now);
                    }
                }
                Op::TruncateOf(coflow, t) => {
                    let now = Time::from_millis(t);
                    let before = prt.flow_reservations();
                    let removed = prt.truncate_future_of(coflow, now);
                    // Scoped truncation drops exactly this Coflow's
                    // future reservations and nothing else.
                    for r in &removed {
                        let ResvKind::Flow(f) = r.kind else {
                            prop_assert!(false, "removed a non-flow reservation");
                            unreachable!()
                        };
                        prop_assert_eq!(f.coflow, coflow);
                        prop_assert!(r.start >= now);
                    }
                    let survivors = prt.flow_reservations();
                    prop_assert_eq!(
                        survivors.len() + removed.len(),
                        before.len(),
                        "scoped truncation lost or duplicated reservations"
                    );
                    prop_assert!(
                        prt.reservations_of(coflow).all(|r| r.start < now),
                        "a future reservation of the truncated coflow survived"
                    );
                    let foreign = |rs: &[ocs_model::Reservation]| {
                        let mut v: Vec<_> =
                            rs.iter().filter(|r| r.flow.coflow != coflow).copied().collect();
                        v.sort_by_key(|r| (r.src, r.start));
                        v
                    };
                    prop_assert_eq!(
                        foreign(&survivors),
                        foreign(&before),
                        "scoped truncation touched another coflow"
                    );
                }
            }
            assert_scoped_queries_agree(&prt).unwrap();
        }
    }

    /// The dirty-port indexed Algorithm 1 must produce byte-identical
    /// reservations (same order, same starts, same ends) and leave the
    /// table in the same state as the scan-everything reference, for
    /// every demand ordering and with or without quantized demands.
    #[test]
    fn indexed_schedule_matches_naive(
        obstacles in proptest::collection::vec(
            (0usize..PORTS, 0usize..PORTS, 0u64..150, 1u64..50),
            0..12,
        ),
        demands in proptest::collection::vec(
            (0usize..PORTS, 0usize..PORTS, 1u64..40),
            1..8,
        ),
        start_ms in 0u64..100,
        order_pick in 0usize..3,
        quantum_ms in 0u64..20, // 0 = exact demands, otherwise the quantum
    ) {
        let mut prt = Prt::new(PORTS);
        let mut flow_counter = 0usize;
        for (src, dst, t, l) in obstacles {
            let s = Time::from_millis(t);
            let e = Time::from_millis(t + l);
            if legal_reserve(&prt, src, dst, s, e) {
                flow_counter += 1;
                prt.reserve(
                    src,
                    dst,
                    s,
                    e,
                    ResvKind::Flow(FlowRef { coflow: 99, flow_idx: flow_counter }),
                );
            }
        }
        let demands: Vec<Demand> = demands
            .into_iter()
            .enumerate()
            .map(|(fi, (src, dst, ms))| Demand {
                flow_idx: fi,
                src,
                dst,
                remaining: Dur::from_millis(ms),
            })
            .collect();
        let order = [
            FlowOrder::OrderedPort,
            FlowOrder::SortedDemand,
            FlowOrder::Random { seed: 7 },
        ][order_pick];
        let config = SunflowConfig::default()
            .order(order)
            .quantum((quantum_ms > 0).then(|| Dur::from_millis(quantum_ms)));
        let start = Time::from_millis(start_ms);
        let delta = Dur::from_millis(10);

        let mut fast = prt.clone();
        let mut naive = prt;
        let made_fast = schedule_demands(&mut fast, 0, &demands, start, delta, config);
        let made_naive =
            sunflow_core::intra::naive_schedule_demands(&mut naive, 0, &demands, start, delta, config);
        prop_assert_eq!(made_fast, made_naive, "reservation streams diverged");
        prop_assert_eq!(
            fast.all_reservations(),
            naive.all_reservations(),
            "indexed and naive schedulers left different tables"
        );
    }
}
