//! Equivalence property tests for the PRT tail-cache fast path: after any
//! legal sequence of reserves, truncations and cuts, the cached
//! `free_at`/`next_start_after` queries must agree with the naive
//! `BTreeMap`-scanning reference implementations at every probe instant.

use ocs_model::{FlowRef, Time};
use proptest::prelude::*;
use sunflow_core::{PortProbe, Prt, ResvKind};

#[derive(Clone, Debug)]
enum Op {
    /// Try to reserve (src, dst, start_ms, len_ms); skipped if illegal.
    Reserve(usize, usize, u64, u64),
    /// Truncate the future at now_ms, keeping in-flight circuits.
    TruncateKeep(u64),
    /// Truncate the future at now_ms, cutting in-flight circuits.
    TruncateCut(u64),
    /// Cut the k-th in-flight reservation (if any) at now_ms.
    Cut(usize, u64),
    /// Retire settled history before cutoff_ms.
    Forget(u64),
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![
            (0usize..4, 0usize..4, 0u64..200, 1u64..60)
                .prop_map(|(s, d, t, l)| Op::Reserve(s, d, t, l)),
            (0u64..250).prop_map(Op::TruncateKeep),
            (0u64..250).prop_map(Op::TruncateCut),
            (0usize..8, 1u64..250).prop_map(|(k, t)| Op::Cut(k, t)),
            (0u64..250).prop_map(Op::Forget),
        ],
        1..50,
    )
}

fn legal_reserve(prt: &Prt, src: usize, dst: usize, start: Time, end: Time) -> bool {
    prt.in_free_at(src, start)
        && prt.out_free_at(dst, start)
        && end <= prt.in_next_start_after(src, start)
        && end <= prt.out_next_start_after(dst, start)
}

/// Probe every port at `t` and check the cached queries against the naive
/// reference scans.
fn assert_agreement(prt: &Prt, t: Time) -> Result<(), TestCaseError> {
    for p in 0..prt.ports() {
        prop_assert_eq!(
            prt.in_free_at(p, t),
            prt.naive_in_free_at(p, t),
            "in_free_at({}, {:?}) diverged from naive scan",
            p,
            t
        );
        prop_assert_eq!(
            prt.out_free_at(p, t),
            prt.naive_out_free_at(p, t),
            "out_free_at({}, {:?}) diverged from naive scan",
            p,
            t
        );
        prop_assert_eq!(
            prt.in_next_start_after(p, t),
            prt.naive_in_next_start_after(p, t),
            "in_next_start_after({}, {:?}) diverged from naive scan",
            p,
            t
        );
        prop_assert_eq!(
            prt.out_next_start_after(p, t),
            prt.naive_out_next_start_after(p, t),
            "out_next_start_after({}, {:?}) diverged from naive scan",
            p,
            t
        );
        prop_assert_eq!(
            prt.in_next_release_after(p, t),
            prt.naive_in_next_release_after(p, t),
            "in_next_release_after({}, {:?}) diverged from naive scan",
            p,
            t
        );
        prop_assert_eq!(
            prt.out_next_release_after(p, t),
            prt.naive_out_next_release_after(p, t),
            "out_next_release_after({}, {:?}) diverged from naive scan",
            p,
            t
        );
        // The fused probes must agree with the naive scalar answers.
        prop_assert_eq!(
            prt.in_probe(p, t),
            PortProbe {
                free: prt.naive_in_free_at(p, t),
                next_start: prt.naive_in_next_start_after(p, t),
                next_release: prt.naive_in_next_release_after(p, t),
            },
            "in_probe({}, {:?}) diverged from naive scans",
            p,
            t
        );
        prop_assert_eq!(
            prt.out_probe(p, t),
            PortProbe {
                free: prt.naive_out_free_at(p, t),
                next_start: prt.naive_out_next_start_after(p, t),
                next_release: prt.naive_out_next_release_after(p, t),
            },
            "out_probe({}, {:?}) diverged from naive scans",
            p,
            t
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The tail-cache fast path answers exactly like the naive map scan
    /// after every mutation, probed across the whole time range the ops
    /// can touch (including instants before, inside and past every
    /// reservation).
    #[test]
    fn cached_queries_match_naive_scan(ops in arb_ops()) {
        let mut prt = Prt::new(4);
        let mut counter = 0usize;
        for op in ops {
            match op {
                Op::Reserve(src, dst, t, l) => {
                    let start = Time::from_millis(t);
                    let end = Time::from_millis(t + l);
                    if legal_reserve(&prt, src, dst, start, end) {
                        counter += 1;
                        prt.reserve(
                            src,
                            dst,
                            start,
                            end,
                            ResvKind::Flow(FlowRef { coflow: 1, flow_idx: counter }),
                        );
                    }
                }
                Op::TruncateKeep(t) => {
                    prt.truncate_future(Time::from_millis(t), true);
                }
                Op::TruncateCut(t) => {
                    prt.truncate_future(Time::from_millis(t), false);
                }
                Op::Cut(k, t) => {
                    let now = Time::from_millis(t);
                    let in_flight: Vec<_> = prt
                        .flow_reservations()
                        .into_iter()
                        .filter(|r| r.start < now && now < r.end)
                        .collect();
                    if !in_flight.is_empty() {
                        let r = &in_flight[k % in_flight.len()];
                        prt.cut_reservation(r.src, r.start, now);
                    }
                }
                Op::Forget(t) => {
                    prt.forget_before(Time::from_millis(t));
                }
            }
            // Probe a spread of instants: a coarse grid over the reachable
            // range plus the exact boundary instants of every reservation
            // (the half-open edges are where an off-by-one would hide).
            for ms in (0..=280).step_by(7) {
                assert_agreement(&prt, Time::from_millis(ms)).unwrap();
            }
            for r in prt.flow_reservations() {
                assert_agreement(&prt, r.start).unwrap();
                assert_agreement(&prt, r.end).unwrap();
            }
        }
    }
}
