//! Property-based tests of Sunflow's proven guarantees.
//!
//! Lemma 1 of the paper: `T_S <= 2 * T_cL` for any bandwidth `B`, any
//! reconfiguration delay `δ`, any Coflow and any ordering of scheduled
//! circuits. Because the whole circuit-side pipeline uses exact integer
//! picoseconds, the bound is asserted with no epsilon.

use ocs_model::{
    circuit_lower_bound, lemma1_holds, lemma2_holds, served_per_flow, validate_port_constraints,
    Bandwidth, Coflow, Dur, Fabric, FlowRef,
};
use proptest::prelude::*;
use sunflow_core::{FlowOrder, InterScheduler, IntraScheduler, ShortestFirst, SunflowConfig};

/// A generated Coflow: up to 8x8 ports, 1..=16 flows, 1 byte..64 MB each.
fn arb_coflow(id: u64) -> impl Strategy<Value = Coflow> {
    proptest::collection::btree_set((0usize..8, 0usize..8), 1..=16).prop_flat_map(move |pairs| {
        let pairs: Vec<(usize, usize)> = pairs.into_iter().collect();
        let len = pairs.len();
        (
            Just(pairs),
            proptest::collection::vec(1u64..64_000_000, len),
        )
            .prop_map(move |(pairs, sizes)| {
                let mut b = Coflow::builder(id);
                for (&(s, d), &z) in pairs.iter().zip(&sizes) {
                    b = b.flow(s, d, z);
                }
                b.build()
            })
    })
}

fn arb_fabric() -> impl Strategy<Value = Fabric> {
    (
        prop_oneof![
            Just(Dur::ZERO),
            Just(Dur::from_micros(10)),
            Just(Dur::from_millis(1)),
            Just(Dur::from_millis(10)),
            Just(Dur::from_millis(100)),
        ],
        prop_oneof![Just(1u64), Just(10), Just(100)],
    )
        .prop_map(|(delta, gbps)| Fabric::new(8, Bandwidth::from_gbps(gbps), delta))
}

fn arb_order() -> impl Strategy<Value = FlowOrder> {
    prop_oneof![
        Just(FlowOrder::OrderedPort),
        Just(FlowOrder::SortedDemand),
        any::<u64>().prop_map(|seed| FlowOrder::Random { seed }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Lemma 1 + schedule validity + exact demand satisfaction, across
    /// bandwidths, deltas and orderings.
    #[test]
    fn lemma1_and_validity(coflow in arb_coflow(0), fabric in arb_fabric(), order in arb_order()) {
        let s = IntraScheduler::new(&fabric, SunflowConfig::default().order(order)).schedule(&coflow);

        // The optical port constraint always holds.
        prop_assert!(validate_port_constraints(s.reservations()).is_ok());

        // Lemma 1, exactly.
        prop_assert!(lemma1_holds(s.cct(), &coflow, &fabric),
            "CCT {} > 2 * T_cL {}", s.cct(), circuit_lower_bound(&coflow, &fabric));

        // And the trivial lower bound: no schedule beats T_cL.
        prop_assert!(s.cct() >= circuit_lower_bound(&coflow, &fabric));

        // Lemma 2 (via alpha).
        prop_assert!(lemma2_holds(s.cct(), &coflow, &fabric));

        // Every flow receives exactly its processing time.
        let served = served_per_flow(s.reservations(), fabric.delta());
        for (idx, f) in coflow.flows().iter().enumerate() {
            let key = FlowRef { coflow: 0, flow_idx: idx };
            prop_assert_eq!(served[&key], fabric.processing_time(f.bytes));
        }
    }

    /// Offline, every subflow costs exactly one circuit setup — the
    /// Figure 5 optimality of Sunflow's switching count.
    #[test]
    fn offline_switching_is_minimal(coflow in arb_coflow(0), fabric in arb_fabric()) {
        let s = IntraScheduler::new(&fabric, SunflowConfig::default()).schedule(&coflow);
        prop_assert_eq!(s.circuit_setups(), coflow.num_flows() as u64);
    }

    /// Inter-Coflow batches: joint validity, per-coflow demand
    /// satisfaction, and the top-priority Coflow achieving its solo CCT.
    #[test]
    fn inter_batch_validity(
        a in arb_coflow(0),
        b in arb_coflow(1),
        c in arb_coflow(2),
        fabric in arb_fabric(),
    ) {
        let coflows = [a, b, c];
        let inter = InterScheduler::new(&fabric, SunflowConfig::default());
        let schedules = inter.schedule_batch(&coflows, &ShortestFirst);

        let mut all = Vec::new();
        for s in &schedules {
            all.extend_from_slice(s.reservations());
        }
        prop_assert!(validate_port_constraints(&all).is_ok());

        for (cf, s) in coflows.iter().zip(&schedules) {
            let served = served_per_flow(s.reservations(), fabric.delta());
            for (idx, f) in cf.flows().iter().enumerate() {
                let key = FlowRef { coflow: cf.id(), flow_idx: idx };
                prop_assert_eq!(served[&key], fabric.processing_time(f.bytes));
            }
        }

        // The highest-priority coflow is never blocked: it finishes
        // exactly as fast as it would alone (it is scheduled first on an
        // empty PRT, so its schedule is its solo schedule).
        let solo_policy = ShortestFirst;
        let mut order: Vec<&Coflow> = coflows.iter().collect();
        use sunflow_core::PriorityPolicy;
        solo_policy.sort(&mut order, &fabric);
        let top = order[0].id() as usize;
        let solo = IntraScheduler::new(&fabric, SunflowConfig::default()).schedule(&coflows[top]);
        prop_assert_eq!(schedules[top].cct(), solo.cct());
    }
}
