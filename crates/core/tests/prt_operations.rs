//! Property tests over randomized Port Reservation Table operation
//! sequences: the PRT's invariants must survive any legal interleaving of
//! reserves, truncations and cuts.

use ocs_model::{validate_port_constraints, FlowRef, Time};
use proptest::prelude::*;
use sunflow_core::{Prt, ResvKind};

#[derive(Clone, Debug)]
enum Op {
    /// Try to reserve (src, dst, start_ms, len_ms); skipped if illegal.
    Reserve(usize, usize, u64, u64),
    /// Truncate the future at now_ms, keeping in-flight circuits.
    TruncateKeep(u64),
    /// Truncate the future at now_ms, cutting in-flight circuits.
    TruncateCut(u64),
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![
            (0usize..4, 0usize..4, 0u64..200, 1u64..60)
                .prop_map(|(s, d, t, l)| Op::Reserve(s, d, t, l)),
            (0u64..250).prop_map(Op::TruncateKeep),
            (0u64..250).prop_map(Op::TruncateCut),
        ],
        1..40,
    )
}

fn legal_reserve(prt: &Prt, src: usize, dst: usize, start: Time, end: Time) -> bool {
    prt.in_free_at(src, start)
        && prt.out_free_at(dst, start)
        && end <= prt.in_next_start_after(src, start)
        && end <= prt.out_next_start_after(dst, start)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// After any operation sequence, the set of flow reservations still
    /// satisfies the optical port constraint, and the PRT's queries are
    /// consistent with its contents.
    #[test]
    fn invariants_survive_random_operations(ops in arb_ops()) {
        let mut prt = Prt::new(4);
        let mut counter = 0usize;
        for op in ops {
            match op {
                Op::Reserve(src, dst, t, l) => {
                    let start = Time::from_millis(t);
                    let end = Time::from_millis(t + l);
                    if legal_reserve(&prt, src, dst, start, end) {
                        counter += 1;
                        prt.reserve(
                            src,
                            dst,
                            start,
                            end,
                            ResvKind::Flow(FlowRef { coflow: 1, flow_idx: counter }),
                        );
                    }
                }
                Op::TruncateKeep(t) => {
                    prt.truncate_future(Time::from_millis(t), true);
                }
                Op::TruncateCut(t) => {
                    prt.truncate_future(Time::from_millis(t), false);
                }
            }
            // Core invariant: non-overlap on every port.
            let rs = prt.flow_reservations();
            prop_assert!(validate_port_constraints(&rs).is_ok());

            // Query consistency: every reservation blocks its ports at
            // its start and frees them at its end.
            for r in &rs {
                prop_assert!(!prt.in_free_at(r.src, r.start));
                prop_assert!(!prt.out_free_at(r.dst, r.start));
            }

            // Release bookkeeping: next_release_after(t) is the minimum
            // end > t over the actual reservations.
            let t0 = Time::from_millis(100);
            let expect = rs.iter().map(|r| r.end).filter(|&e| e > t0).min();
            prop_assert_eq!(prt.next_release_after(t0), expect);
        }
    }

    /// truncate_future reports exactly what it removed: re-adding the
    /// removed future reservations restores legality (they were legal
    /// before, nothing else occupies their slots).
    #[test]
    fn truncation_report_is_faithful(ops in arb_ops(), cut_ms in 0u64..250) {
        let mut prt = Prt::new(4);
        let mut counter = 0usize;
        for op in &ops {
            if let Op::Reserve(src, dst, t, l) = *op {
                let start = Time::from_millis(t);
                let end = Time::from_millis(t + l);
                if legal_reserve(&prt, src, dst, start, end) {
                    counter += 1;
                    prt.reserve(src, dst, start, end,
                        ResvKind::Flow(FlowRef { coflow: 1, flow_idx: counter }));
                }
            }
        }
        let before = prt.flow_reservations().len();
        let now = Time::from_millis(cut_ms);
        let removed = prt.truncate_future(now, true);
        let after = prt.flow_reservations().len();
        prop_assert_eq!(before, after + removed.len());
        // Everything reported as removed was indeed entirely in the future.
        for r in &removed {
            prop_assert!(r.start >= now);
        }
        // And the removed slots are free again.
        for r in &removed {
            prop_assert!(prt.in_free_at(r.src, r.start));
            prop_assert!(prt.out_free_at(r.dst, r.start));
        }
    }
}
