//! Property tests for the synthetic workload generator and the idleness
//! machinery, across seeds and fabric sizes.

use ocs_model::{Bandwidth, Dur, Fabric};
use ocs_workload::{generate, network_idleness, perturb_sizes, scale_to_idleness, SynthConfig, MB};
use proptest::prelude::*;

fn arb_config() -> impl Strategy<Value = SynthConfig> {
    (4usize..40, 5usize..60, any::<u64>(), 60.0f64..1200.0).prop_map(
        |(ports, coflows, seed, horizon_secs)| SynthConfig {
            ports,
            coflows,
            horizon_secs,
            seed,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Structural invariants of every generated workload.
    #[test]
    fn generated_workloads_are_well_formed(cfg in arb_config()) {
        let coflows = generate(&cfg);
        prop_assert_eq!(coflows.len(), cfg.coflows);
        let mut prev_arrival = ocs_model::Time::ZERO;
        for (k, c) in coflows.iter().enumerate() {
            prop_assert_eq!(c.id(), k as u64);
            prop_assert!(c.min_ports() <= cfg.ports);
            prop_assert!(c.arrival() >= prev_arrival, "arrivals sorted");
            prev_arrival = c.arrival();
            for f in c.flows() {
                prop_assert!(f.bytes >= MB, "1 MB floor");
                prop_assert_eq!(f.bytes % MB, 0, "MB rounding");
                prop_assert!(f.src < cfg.ports && f.dst < cfg.ports, "ports in range");
            }
            // Category is consistent with the endpoint sets.
            let cat = c.category();
            prop_assert_eq!(
                cat,
                match (c.num_senders() > 1, c.num_receivers() > 1) {
                    (false, false) => ocs_model::Category::OneToOne,
                    (false, true) => ocs_model::Category::OneToMany,
                    (true, false) => ocs_model::Category::ManyToOne,
                    (true, true) => ocs_model::Category::ManyToMany,
                }
            );
        }
    }

    /// The same seed reproduces the workload bit-for-bit; different seeds
    /// diverge.
    #[test]
    fn seeds_control_determinism(cfg in arb_config()) {
        let a = generate(&cfg);
        let b = generate(&cfg);
        prop_assert_eq!(&a, &b);
        let other = generate(&SynthConfig { seed: cfg.seed.wrapping_add(1), ..cfg });
        prop_assert_ne!(&a, &other);
    }

    /// Perturbation keeps every flow within the band and above the floor.
    #[test]
    fn perturbation_stays_in_band(cfg in arb_config(), pct in 0.01f64..0.3, seed in any::<u64>()) {
        let base = generate(&cfg);
        let p = perturb_sizes(&base, pct, seed);
        for (a, b) in base.iter().zip(&p) {
            prop_assert_eq!(a.num_flows(), b.num_flows());
            for (fa, fb) in a.flows().iter().zip(b.flows()) {
                prop_assert!(fb.bytes >= MB);
                let lo = (fa.bytes as f64 * (1.0 - pct) - 1.0).max(MB as f64);
                let hi = fa.bytes as f64 * (1.0 + pct) + 1.0;
                prop_assert!((fb.bytes as f64) >= lo && (fb.bytes as f64) <= hi);
            }
        }
    }

    /// Idleness is monotone under byte scaling, and scale_to_idleness
    /// lands near its target whenever the target is reachable.
    #[test]
    fn idleness_scaling_behaves(cfg in arb_config(), target in 0.25f64..0.9) {
        let coflows = generate(&cfg);
        let fabric = Fabric::new(cfg.ports, Bandwidth::GBPS, Dur::from_millis(10));
        let idle_base = network_idleness(&coflows, &fabric);
        prop_assert!((0.0..=1.0).contains(&idle_base));

        let half: Vec<_> = coflows.iter().map(|c| c.scaled_bytes(1, 2)).collect();
        prop_assert!(network_idleness(&half, &fabric) >= idle_base - 1e-9);

        let (scaled, _) = scale_to_idleness(&coflows, &fabric, target);
        let got = network_idleness(&scaled, &fabric);
        // Discreteness can leave a gap, but we never overshoot wildly.
        prop_assert!((got - target).abs() < 0.2, "target {target}, got {got}");
    }
}
