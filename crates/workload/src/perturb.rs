//! Size perturbation (§5.1 of the paper).
//!
//! The trace's sizes are rounded to the nearest MB, so many subflows in a
//! Coflow are exactly equal. The paper adds ±5 % perturbation to each
//! flow's size "to account for unequal flow sizes in real MapReduce
//! jobs", flooring the result at 1 MB (the smallest flow in the trace) —
//! which also pins the Lemma 2 factor to 4.5 (α = 1.25 at δ = 10 ms,
//! B = 1 Gbps).

use crate::trace::MB;
use ocs_model::{Coflow, Flow};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Apply a uniform ±`fraction` size perturbation to every flow, flooring
/// at 1 MB. Deterministic per seed.
///
/// # Panics
/// Panics unless `0 <= fraction < 1`.
pub fn perturb_sizes(coflows: &[Coflow], fraction: f64, seed: u64) -> Vec<Coflow> {
    assert!((0.0..1.0).contains(&fraction), "fraction must be in [0, 1)");
    let mut rng = StdRng::seed_from_u64(seed);
    coflows
        .iter()
        .map(|c| {
            let mut b = Coflow::builder(c.id()).arrival(c.arrival());
            for &Flow { src, dst, bytes } in c.flows() {
                let factor = 1.0 + rng.gen_range(-fraction..=fraction);
                let perturbed = ((bytes as f64 * factor).round() as u64).max(MB);
                b = b.flow(src, dst, perturbed);
            }
            b.build()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn coflow() -> Coflow {
        Coflow::builder(0)
            .flow(0, 1, 10 * MB)
            .flow(1, 2, 10 * MB)
            .flow(2, 3, MB)
            .build()
    }

    #[test]
    fn stays_within_five_percent_with_floor() {
        let out = perturb_sizes(&[coflow()], 0.05, 7);
        for f in out[0].flows() {
            if f.bytes > MB {
                let orig = if f.src == 2 { MB } else { 10 * MB } as f64;
                let ratio = f.bytes as f64 / orig;
                assert!((0.95..=1.05).contains(&ratio), "ratio {ratio}");
            }
            assert!(f.bytes >= MB);
        }
    }

    #[test]
    fn equal_sizes_become_unequal() {
        let out = perturb_sizes(&[coflow()], 0.05, 7);
        assert_ne!(out[0].flows()[0].bytes, out[0].flows()[1].bytes);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = perturb_sizes(&[coflow()], 0.05, 1);
        let b = perturb_sizes(&[coflow()], 0.05, 1);
        let c = perturb_sizes(&[coflow()], 0.05, 2);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn zero_fraction_is_identity() {
        let orig = vec![coflow()];
        assert_eq!(perturb_sizes(&orig, 0.0, 9), orig);
    }

    #[test]
    fn structure_is_preserved() {
        let out = perturb_sizes(&[coflow()], 0.05, 3);
        assert_eq!(out[0].num_flows(), 3);
        assert_eq!(out[0].category(), coflow().category());
        assert_eq!(out[0].arrival(), coflow().arrival());
    }
}
