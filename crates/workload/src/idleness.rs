//! Network idleness: the load metric of the inter-Coflow evaluation
//! (§5.4 of the paper).
//!
//! A Coflow is *active* from its arrival `t_Arr` until `t_Arr + T_pL`
//! (its packet-switched lower bound at bandwidth `B`). Network idleness
//! is the fraction of the horizon during which no Coflow is active. The
//! metric is independent of the scheduling policy and is an upper bound
//! on true idle time (Coflows may linger past `T_pL` while queueing).
//!
//! The paper reports 12 % idleness for the original trace at 1 Gbps,
//! rising to 81 % / 98 % at 10 / 100 Gbps, and scales Coflow byte sizes
//! to reach 20 % / 40 % while preserving structure — [`scale_to_idleness`]
//! reproduces that procedure.

use ocs_model::{packet_lower_bound, Coflow, Dur, Fabric, Time};

/// The active intervals `[t_Arr, t_Arr + T_pL)` of every Coflow.
fn active_intervals(coflows: &[Coflow], fabric: &Fabric) -> Vec<(Time, Time)> {
    coflows
        .iter()
        .map(|c| {
            let end = c.arrival() + packet_lower_bound(c, fabric);
            (c.arrival(), end)
        })
        .collect()
}

/// Fraction of `[0, max(t_Arr + T_pL))` during which no Coflow is active.
/// Returns 0 for an empty workload.
pub fn network_idleness(coflows: &[Coflow], fabric: &Fabric) -> f64 {
    let mut iv = active_intervals(coflows, fabric);
    if iv.is_empty() {
        return 0.0;
    }
    iv.sort_unstable();
    let horizon = iv.iter().map(|&(_, e)| e).max().expect("non-empty");
    if horizon == Time::ZERO {
        return 0.0;
    }
    let mut covered = Dur::ZERO;
    let mut cur: Option<(Time, Time)> = None;
    for (s, e) in iv {
        match cur {
            None => cur = Some((s, e)),
            Some((cs, ce)) => {
                if s <= ce {
                    cur = Some((cs, ce.max(e)));
                } else {
                    covered += ce.since(cs);
                    cur = Some((s, e));
                }
            }
        }
    }
    if let Some((cs, ce)) = cur {
        covered += ce.since(cs);
    }
    1.0 - covered.as_ps() as f64 / horizon.as_ps() as f64
}

/// Scale every Coflow's byte sizes by a common factor so the workload's
/// idleness approaches `target` (in `[0, 1)`), preserving structural
/// characteristics (endpoints, flow-count, arrival times) exactly as the
/// paper's Figure 8 setup does.
///
/// Returns the scaled Coflows and the applied factor (parts-per-million).
/// Idleness is monotone in the factor, so a binary search converges;
/// the result is within the precision the workload's discreteness allows.
///
/// # Panics
/// Panics if `target` is not within `[0, 1)` or the workload is empty.
pub fn scale_to_idleness(coflows: &[Coflow], fabric: &Fabric, target: f64) -> (Vec<Coflow>, u64) {
    assert!((0.0..1.0).contains(&target), "target must be in [0, 1)");
    assert!(!coflows.is_empty(), "cannot scale an empty workload");

    let idleness_at = |ppm: u64| -> f64 {
        let scaled: Vec<Coflow> = coflows
            .iter()
            .map(|c| c.scaled_bytes(ppm, 1_000_000))
            .collect();
        network_idleness(&scaled, fabric)
    };

    // Bigger factor => longer active windows => lower idleness.
    let mut lo: u64 = 1; // very small: max idleness
                         // x1000 cap: enough for any load the paper sweeps while keeping
                         // scaled processing times far from the picosecond clock's range.
    let mut hi: u64 = 1_000_000_000;
    for _ in 0..60 {
        let mid = lo + (hi - lo) / 2;
        if idleness_at(mid) > target {
            lo = mid; // still too idle: need more bytes
        } else {
            hi = mid;
        }
        if hi - lo <= 1 {
            break;
        }
    }
    // Pick whichever bound lands closer.
    let (ppm, _) = [lo, hi]
        .into_iter()
        .map(|p| (p, (idleness_at(p) - target).abs()))
        .min_by(|a, b| a.1.partial_cmp(&b.1).expect("no NaN"))
        .expect("two candidates");
    (
        coflows
            .iter()
            .map(|c| c.scaled_bytes(ppm, 1_000_000))
            .collect(),
        ppm,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use ocs_model::Bandwidth;

    fn fabric() -> Fabric {
        Fabric::new(4, Bandwidth::GBPS, Dur::from_millis(10))
    }

    fn coflow(id: u64, at_ms: u64, mb: u64) -> Coflow {
        Coflow::builder(id)
            .arrival(Time::from_millis(at_ms))
            .flow(0, 0, mb * 1_000_000)
            .build()
    }

    #[test]
    fn disjoint_coflows_leave_gaps() {
        // 8 ms active every 100 ms, horizon 208 ms.
        let cs = vec![coflow(0, 0, 1), coflow(1, 100, 1), coflow(2, 200, 1)];
        let idle = network_idleness(&cs, &fabric());
        let expect = 1.0 - (3.0 * 8.0) / 208.0;
        assert!((idle - expect).abs() < 1e-9, "idle={idle} expect={expect}");
    }

    #[test]
    fn overlapping_coflows_merge() {
        let cs = vec![coflow(0, 0, 100), coflow(1, 100, 100)]; // 800 ms each
        let idle = network_idleness(&cs, &fabric());
        // Union covers [0, 900): zero idleness.
        assert!(idle.abs() < 1e-9);
    }

    #[test]
    fn back_to_back_is_fully_busy() {
        let cs = vec![coflow(0, 0, 100)];
        assert_eq!(network_idleness(&cs, &fabric()), 0.0);
    }

    #[test]
    fn scaling_down_increases_idleness() {
        let cs = vec![coflow(0, 0, 100), coflow(1, 500, 100)];
        let f = fabric();
        let before = network_idleness(&cs, &f);
        let halved: Vec<Coflow> = cs.iter().map(|c| c.scaled_bytes(1, 2)).collect();
        assert!(network_idleness(&halved, &f) > before);
    }

    #[test]
    fn scale_to_idleness_converges() {
        let cs: Vec<Coflow> = (0..20).map(|i| coflow(i, i * 200, 10)).collect();
        let f = fabric();
        for target in [0.2, 0.4, 0.8] {
            let (scaled, ppm) = scale_to_idleness(&cs, &f, target);
            let got = network_idleness(&scaled, &f);
            assert!(
                (got - target).abs() < 0.03,
                "target {target} got {got} (ppm {ppm})"
            );
        }
    }

    #[test]
    fn empty_workload_is_not_idle() {
        assert_eq!(network_idleness(&[], &fabric()), 0.0);
    }
}
