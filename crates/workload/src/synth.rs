//! Calibrated synthetic Facebook-like Coflow workload.
//!
//! The paper's trace is a one-hour Hive/MapReduce trace from a Facebook
//! production cluster: 526 Coflows on a 150-port fabric, sizes rounded to
//! the nearest MB, with the published aggregate statistics:
//!
//! * Table 4 category mix — O2O 23.4 %, O2M 9.9 %, M2O 40.1 %,
//!   M2M 26.6 % of Coflows; M2M carries 99.943 % of all bytes;
//! * ~25 % "long" Coflows (average subflow ≥ 5 MB) carrying ~99 % of
//!   the bytes (§5.3.2);
//! * ≈12 % network idleness at the native 1 Gbps (§5.4).
//!
//! This generator reproduces those aggregates from a seed, so every
//! experiment in the repository is self-contained while remaining
//! faithful to the distributional shape that drives the paper's results.
//! A real `coflow-benchmark` file can be substituted via
//! [`crate::trace::parse`].

use crate::trace::MB;
use ocs_model::{Category, Coflow, Time};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generator parameters. The defaults reproduce the paper's setting.
#[derive(Clone, Copy, Debug)]
pub struct SynthConfig {
    /// Fabric ports (default 150).
    pub ports: usize,
    /// Number of Coflows (default 526, "more than 500").
    pub coflows: usize,
    /// Trace horizon over which arrivals spread (default one hour).
    pub horizon_secs: f64,
    /// RNG seed; identical seeds yield identical workloads.
    pub seed: u64,
}

impl Default for SynthConfig {
    fn default() -> SynthConfig {
        SynthConfig {
            ports: 150,
            coflows: 526,
            horizon_secs: 3600.0,
            seed: 0x50f10,
        }
    }
}

/// Draw from `Pareto(x_m, alpha)`.
fn pareto(rng: &mut StdRng, xm: f64, alpha: f64) -> f64 {
    let u: f64 = rng.gen_range(1e-12..1.0);
    xm / u.powf(1.0 / alpha)
}

/// Round megabytes to whole MB with a 1 MB floor and a cap.
fn mb_round(mb: f64, cap_mb: f64) -> u64 {
    (mb.min(cap_mb).round() as u64).max(1) * MB
}

/// Pick `k` distinct ports.
fn pick_ports(rng: &mut StdRng, n: usize, k: usize) -> Vec<usize> {
    assert!(k <= n);
    // Floyd's algorithm would do; for small k relative to n, rejection
    // sampling is simpler and fast enough.
    let mut picked = Vec::with_capacity(k);
    while picked.len() < k {
        let p = rng.gen_range(0..n);
        if !picked.contains(&p) {
            picked.push(p);
        }
    }
    picked
}

/// Generate a workload per `config`.
///
/// ```
/// use ocs_workload::{generate, SynthConfig};
///
/// let coflows = generate(&SynthConfig { coflows: 20, ports: 16, ..SynthConfig::default() });
/// assert_eq!(coflows.len(), 20);
/// assert!(coflows.iter().all(|c| c.min_ports() <= 16));
/// ```
pub fn generate(config: &SynthConfig) -> Vec<Coflow> {
    assert!(config.ports >= 4, "generator needs at least 4 ports");
    assert!(config.coflows > 0);
    let mut rng = StdRng::seed_from_u64(config.seed);
    let n = config.ports;

    // Poisson arrivals over the horizon.
    let rate = config.coflows as f64 / config.horizon_secs;
    let mut t = 0.0f64;

    let mut out = Vec::with_capacity(config.coflows);
    for id in 0..config.coflows as u64 {
        t += -(rng.gen_range(1e-12..1.0f64)).ln() / rate;
        let arrival = Time::from_secs_f64(t);

        // Table 4 category mix.
        let cat = {
            let u: f64 = rng.gen();
            if u < 0.234 {
                Category::OneToOne
            } else if u < 0.234 + 0.099 {
                Category::OneToMany
            } else if u < 0.234 + 0.099 + 0.401 {
                Category::ManyToOne
            } else {
                Category::ManyToMany
            }
        };

        let mut b = Coflow::builder(id).arrival(arrival);
        match cat {
            Category::OneToOne => {
                let p = pick_ports(&mut rng, n, 2);
                // Tiny unicast: overwhelmingly 1 MB (the trace floor).
                let mb = pareto(&mut rng, 1.0, 2.5);
                b = b.flow(p[0], p[1], mb_round(mb, 8.0));
            }
            Category::OneToMany => {
                let r = 2 + (pareto(&mut rng, 1.0, 1.5) as usize).min(18).min(n - 2);
                let src = rng.gen_range(0..n);
                let dsts = pick_ports(&mut rng, n, r);
                for d in dsts {
                    let mb = pareto(&mut rng, 1.0, 2.0);
                    b = b.flow(src, d, mb_round(mb, 16.0));
                }
            }
            Category::ManyToOne => {
                // In-cast: one reducer total split equally across the m
                // mappers — MapReduce semantics, so the subflows of an
                // M2O Coflow are (near-)equal, as in the trace.
                let m = 2 + (pareto(&mut rng, 1.0, 1.3) as usize).min(28).min(n - 2);
                let dst = rng.gen_range(0..n);
                let srcs = pick_ports(&mut rng, n, m);
                let total_mb = pareto(&mut rng, m as f64, 1.6);
                for s in srcs {
                    b = b.flow(s, dst, mb_round(total_mb / m as f64, 16.0));
                }
            }
            Category::ManyToMany => {
                // A MapReduce shuffle: each reducer receives a
                // heavy-tailed total S_j, split equally over the m
                // mappers (flow = S_j / m, rounded to MB). The resulting
                // demand matrix is column-skewed with equal entries
                // within a column — the structure that forces the
                // assignment-based schedulers into many slices.
                //
                // Widths capped at 55x55 (~3 000 subflows): the paper's
                // §6 notes the trace's largest Coflows have up to 3 000
                // subflows.
                let m = 4 + (pareto(&mut rng, 8.0, 1.00) as usize).min(51).min(n - 4);
                let r = 4 + (pareto(&mut rng, 8.0, 1.00) as usize).min(51).min(n - 4);
                let srcs = pick_ports(&mut rng, n, m);
                let dsts = pick_ports(&mut rng, n, r);
                // Per-coflow scale: the Pareto tail produces the giant
                // shuffles that dominate trace bytes and idleness.
                // Two sub-populations: everyday shuffles (flows of a few
                // MB, the regime where reconfiguration overhead bites the
                // preemptive schedulers) and a heavy tail of giant jobs
                // that dominates bytes and keeps the fabric busy.
                let scale_mb = if rng.gen::<f64>() < 0.20 {
                    pareto(&mut rng, 110.0, 1.05).min(2_500.0)
                } else {
                    pareto(&mut rng, 3.5, 1.10).min(60.0)
                };
                for &d in &dsts {
                    // Reducer skew within the shuffle.
                    let per_mapper = scale_mb * pareto(&mut rng, 0.55, 2.5).min(8.0);
                    for &s in &srcs {
                        b = b.flow(s, d, mb_round(per_mapper, 25_000.0));
                    }
                }
            }
        }
        out.push(b.build());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ocs_model::{packet_lower_bound, Fabric};

    fn stats(coflows: &[Coflow]) -> ([usize; 4], [u64; 4]) {
        let mut count = [0usize; 4];
        let mut bytes = [0u64; 4];
        for c in coflows {
            let k = Category::ALL
                .iter()
                .position(|&cat| cat == c.category())
                .expect("category");
            count[k] += 1;
            bytes[k] += c.total_bytes();
        }
        (count, bytes)
    }

    #[test]
    fn determinism_per_seed() {
        let a = generate(&SynthConfig::default());
        let b = generate(&SynthConfig::default());
        assert_eq!(a, b);
        let c = generate(&SynthConfig {
            seed: 42,
            ..SynthConfig::default()
        });
        assert_ne!(a, c);
    }

    #[test]
    fn category_mix_matches_table4() {
        let cs = generate(&SynthConfig::default());
        let (count, _) = stats(&cs);
        let total = cs.len() as f64;
        let frac: Vec<f64> = count.iter().map(|&c| c as f64 / total).collect();
        // Within sampling noise of the Table 4 proportions.
        assert!((frac[0] - 0.234).abs() < 0.06, "O2O {}", frac[0]);
        assert!((frac[1] - 0.099).abs() < 0.05, "O2M {}", frac[1]);
        assert!((frac[2] - 0.401).abs() < 0.07, "M2O {}", frac[2]);
        assert!((frac[3] - 0.266).abs() < 0.06, "M2M {}", frac[3]);
    }

    #[test]
    fn m2m_dominates_bytes() {
        let cs = generate(&SynthConfig::default());
        let (_, bytes) = stats(&cs);
        let total: u64 = bytes.iter().sum();
        let m2m = bytes[3] as f64 / total as f64;
        assert!(m2m > 0.99, "M2M bytes fraction {m2m}");
    }

    #[test]
    fn sizes_are_mb_rounded_with_floor() {
        let cs = generate(&SynthConfig::default());
        for c in &cs {
            for f in c.flows() {
                assert_eq!(f.bytes % MB, 0, "sizes are whole MB");
                assert!(f.bytes >= MB, "1 MB floor");
            }
        }
    }

    #[test]
    fn arrivals_are_increasing_within_the_horizon_scale() {
        let cs = generate(&SynthConfig::default());
        for w in cs.windows(2) {
            assert!(w[0].arrival() <= w[1].arrival());
        }
        let last = cs.last().expect("non-empty").arrival().as_secs_f64();
        assert!(last > 1800.0 && last < 7200.0, "horizon-ish: {last}");
    }

    #[test]
    fn idleness_is_near_the_papers_12_percent() {
        let cs = generate(&SynthConfig::default());
        let f = Fabric::paper_default();
        let idle = crate::idleness::network_idleness(&cs, &f);
        assert!(
            (0.08..0.18).contains(&idle),
            "idleness {idle} far from the paper's 12 %"
        );
    }

    #[test]
    fn long_coflows_carry_almost_all_bytes() {
        let cs = generate(&SynthConfig::default());
        let f = Fabric::paper_default();
        let total: u64 = cs.iter().map(|c| c.total_bytes()).sum();
        // "Long" per §5.3.2: average subflow size >= 5 MB.
        let long: Vec<&Coflow> = cs
            .iter()
            .filter(|c| c.total_bytes() / c.num_flows() as u64 >= 5 * MB)
            .collect();
        let long_bytes: u64 = long.iter().map(|c| c.total_bytes()).sum();
        let frac_coflows = long.len() as f64 / cs.len() as f64;
        let frac_bytes = long_bytes as f64 / total as f64;
        assert!(
            (0.1..0.45).contains(&frac_coflows),
            "long coflow fraction {frac_coflows}"
        );
        assert!(frac_bytes > 0.95, "long bytes fraction {frac_bytes}");
        // Sanity: the workload contains genuinely long transfers.
        let max_tpl = cs
            .iter()
            .map(|c| packet_lower_bound(c, &f))
            .max()
            .expect("non-empty");
        assert!(max_tpl.as_secs_f64() > 30.0);
    }

    #[test]
    fn respects_port_bounds() {
        let cfg = SynthConfig {
            ports: 16,
            coflows: 100,
            ..SynthConfig::default()
        };
        for c in generate(&cfg) {
            assert!(c.min_ports() <= 16);
        }
    }
}

#[cfg(test)]
mod calibration_probe {
    use super::*;
    use ocs_model::Fabric;

    #[test]
    #[ignore]
    fn probe() {
        let cs = generate(&SynthConfig::default());
        let f = Fabric::paper_default();
        let idle = crate::idleness::network_idleness(&cs, &f);
        let total: u64 = cs.iter().map(|c| c.total_bytes()).sum();
        let m2m: u64 = cs
            .iter()
            .filter(|c| c.category() == Category::ManyToMany)
            .map(|c| c.total_bytes())
            .sum();
        let long: Vec<_> = cs
            .iter()
            .filter(|c| c.total_bytes() / c.num_flows() as u64 >= 5 * MB)
            .collect();
        let long_bytes: u64 = long.iter().map(|c| c.total_bytes()).sum();
        let cats = [
            cs.iter()
                .filter(|c| c.category() == Category::OneToOne)
                .count(),
            cs.iter()
                .filter(|c| c.category() == Category::OneToMany)
                .count(),
            cs.iter()
                .filter(|c| c.category() == Category::ManyToOne)
                .count(),
            cs.iter()
                .filter(|c| c.category() == Category::ManyToMany)
                .count(),
        ];
        println!("idleness={idle:.3} m2m_bytes={:.5} long_frac={:.3} long_bytes={:.4} cats={cats:?} total_tb={:.2}",
            m2m as f64 / total as f64,
            long.len() as f64 / cs.len() as f64,
            long_bytes as f64 / total as f64,
            total as f64 / 1e12);
        let flows: usize = cs.iter().map(|c| c.num_flows()).sum();
        let maxf = cs.iter().map(|c| c.num_flows()).max().unwrap();
        println!("total_flows={flows} max_flows={maxf}");
    }
}
