//! Parser and writer for the Facebook `coflow-benchmark` trace format.
//!
//! The paper's workload is a one-hour Hive/MapReduce trace from a
//! Facebook production cluster, published as `coflow-benchmark`
//! (<https://github.com/coflow/coflow-benchmark>). The file format is:
//!
//! ```text
//! <num racks> <num coflows>
//! <id> <arrival ms> <m> <rack_1> … <rack_m> <r> <rack:MB> … <rack:MB>
//! ```
//!
//! Each line is one Coflow: `m` mapper racks, then `r` reducers as
//! `rack:size` pairs where `size` is the total megabytes the reducer
//! receives. As in the original Varys/coflow-benchmark semantics, every
//! mapper sends an equal share of each reducer's bytes, so one line
//! expands to `m × r` flows.
//!
//! The real trace file can be dropped into the benchmark harness; all
//! experiments also run against the calibrated synthetic generator in
//! [`crate::synth`] so the repository is self-contained.

use ocs_model::{Coflow, Time};
use std::fmt;

/// One megabyte as used by the trace (2²⁰ bytes, matching the original
/// simulator).
pub const MB: u64 = 1 << 20;

/// A parsed trace: the fabric size it was recorded on plus its Coflows.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Trace {
    /// Number of racks (fabric ports).
    pub ports: usize,
    /// The Coflows, in file order.
    pub coflows: Vec<Coflow>,
}

/// Parse failure, with the 1-based line it occurred on.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "trace parse error on line {}: {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for ParseError {}

fn err(line: usize, message: impl Into<String>) -> ParseError {
    ParseError {
        line,
        message: message.into(),
    }
}

/// Parse a trace from its textual form.
///
/// Rack ids may be 0- or 1-based; 1-based files (the published trace) are
/// detected by the absence of rack 0 and shifted down. Reducer sizes are
/// megabytes and may be fractional. Empty lines are ignored.
pub fn parse(text: &str) -> Result<Trace, ParseError> {
    let mut lines = text
        .lines()
        .enumerate()
        .map(|(i, l)| (i + 1, l.trim()))
        .filter(|(_, l)| !l.is_empty());

    let (hline, header) = lines.next().ok_or_else(|| err(0, "empty trace"))?;
    let mut it = header.split_whitespace();
    let ports: usize = it
        .next()
        .and_then(|t| t.parse().ok())
        .ok_or_else(|| err(hline, "missing/invalid rack count"))?;
    let expect: usize = it
        .next()
        .and_then(|t| t.parse().ok())
        .ok_or_else(|| err(hline, "missing/invalid coflow count"))?;
    if ports == 0 {
        return Err(err(hline, "rack count must be positive"));
    }

    // First pass: raw records with original rack ids.
    struct Raw {
        line: usize,
        id: u64,
        arrival_ms: u64,
        mappers: Vec<usize>,
        reducers: Vec<(usize, f64)>,
    }
    let mut raws = Vec::new();
    let mut min_rack = usize::MAX;

    for (ln, line) in lines {
        let mut t = line.split_whitespace();
        let mut next_num = |what: &str| -> Result<u64, ParseError> {
            t.next()
                .and_then(|v| v.parse().ok())
                .ok_or_else(|| err(ln, format!("missing/invalid {what}")))
        };
        let id = next_num("coflow id")?;
        let arrival_ms = next_num("arrival time")?;
        let m = next_num("mapper count")? as usize;
        let mut mappers = Vec::with_capacity(m);
        for k in 0..m {
            let rack = next_num(&format!("mapper {k} location"))? as usize;
            min_rack = min_rack.min(rack);
            mappers.push(rack);
        }
        let r = next_num("reducer count")? as usize;
        let mut reducers = Vec::with_capacity(r);
        for k in 0..r {
            let tok = t
                .next()
                .ok_or_else(|| err(ln, format!("missing reducer {k}")))?;
            let (rack_s, size_s) = tok
                .split_once(':')
                .ok_or_else(|| err(ln, format!("reducer {k} is not rack:sizeMB")))?;
            let rack: usize = rack_s
                .parse()
                .map_err(|_| err(ln, format!("bad reducer rack {rack_s:?}")))?;
            let size: f64 = size_s
                .parse()
                .map_err(|_| err(ln, format!("bad reducer size {size_s:?}")))?;
            if size < 0.0 || size.is_nan() {
                return Err(err(ln, "negative reducer size"));
            }
            min_rack = min_rack.min(rack);
            reducers.push((rack, size));
        }
        if m == 0 || r == 0 {
            return Err(err(ln, "coflow needs at least one mapper and reducer"));
        }
        raws.push(Raw {
            line: ln,
            id,
            arrival_ms,
            mappers,
            reducers,
        });
    }

    // 1-based rack ids (the published trace) are shifted down.
    let base = if min_rack >= 1 { 1 } else { 0 };

    let mut coflows = Vec::with_capacity(raws.len());
    for raw in raws {
        let mut b = Coflow::builder(raw.id).arrival(Time::from_millis(raw.arrival_ms));
        for &(r_rack, size_mb) in &raw.reducers {
            let dst = r_rack - base;
            if dst >= ports {
                return Err(err(raw.line, format!("reducer rack {r_rack} out of range")));
            }
            let total_bytes = (size_mb * MB as f64).round() as u64;
            let m = raw.mappers.len() as u64;
            let per = total_bytes / m;
            let mut extra = total_bytes % m;
            for &m_rack in &raw.mappers {
                let src = m_rack - base;
                if src >= ports {
                    return Err(err(raw.line, format!("mapper rack {m_rack} out of range")));
                }
                let bytes = per + if extra > 0 { 1 } else { 0 };
                extra = extra.saturating_sub(1);
                b = b.flow(src, dst, bytes);
            }
        }
        let c = b
            .try_build()
            .ok_or_else(|| err(raw.line, "coflow has no bytes"))?;
        coflows.push(c);
    }

    if coflows.len() != expect {
        return Err(err(
            1,
            format!(
                "header declares {expect} coflows, file has {}",
                coflows.len()
            ),
        ));
    }
    Ok(Trace { ports, coflows })
}

/// Render a set of Coflows in the trace format (inverse of [`parse`],
/// up to the per-mapper byte split: each flow becomes its own
/// single-mapper reducer entry).
pub fn write(ports: usize, coflows: &[Coflow]) -> String {
    let mut out = format!("{} {}\n", ports, coflows.len());
    for c in coflows {
        // Represent each coflow exactly: mappers = distinct sources; one
        // reducer entry per (dst) with the total MB, only valid when the
        // per-mapper split is uniform — otherwise fall back to one line
        // per flow via single-mapper coflow encoding. For simplicity and
        // exactness we always emit one mapper set per coflow when uniform,
        // else per-flow lines are not representable; we emit the uniform
        // approximation used by the benchmark tooling.
        let mut srcs: Vec<usize> = c.flows().iter().map(|f| f.src).collect();
        srcs.sort_unstable();
        srcs.dedup();
        let mut dsts: Vec<usize> = c.flows().iter().map(|f| f.dst).collect();
        dsts.sort_unstable();
        dsts.dedup();
        out.push_str(&format!(
            "{} {} {} ",
            c.id(),
            c.arrival().as_ps() / ocs_model::time::PS_PER_MS,
            srcs.len()
        ));
        for s in &srcs {
            out.push_str(&format!("{} ", s + 1));
        }
        out.push_str(&format!("{}", dsts.len()));
        for d in &dsts {
            let total: u64 = c
                .flows()
                .iter()
                .filter(|f| f.dst == *d)
                .map(|f| f.bytes)
                .sum();
            out.push_str(&format!(" {}:{}", d + 1, total / MB));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
150 2
1 100 2 1 2 1 3:10
7 250 1 5 2 6:4 7:2
";

    #[test]
    fn parses_the_benchmark_format() {
        let t = parse(SAMPLE).unwrap();
        assert_eq!(t.ports, 150);
        assert_eq!(t.coflows.len(), 2);

        let c1 = &t.coflows[0];
        assert_eq!(c1.id(), 1);
        assert_eq!(c1.arrival(), Time::from_millis(100));
        // 2 mappers x 1 reducer = 2 flows of 5 MB each.
        assert_eq!(c1.num_flows(), 2);
        assert_eq!(c1.total_bytes(), 10 * MB);
        assert_eq!(c1.flows()[0].src, 0); // 1-based shifted down
        assert_eq!(c1.flows()[0].dst, 2);

        let c2 = &t.coflows[1];
        assert_eq!(c2.num_flows(), 2);
        assert_eq!(c2.flows()[0].bytes, 4 * MB);
        assert_eq!(c2.flows()[1].bytes, 2 * MB);
    }

    #[test]
    fn uneven_split_preserves_total() {
        let text = "10 1\n1 0 3 1 2 3 1 4:10\n";
        let t = parse(text).unwrap();
        assert_eq!(t.coflows[0].total_bytes(), 10 * MB);
        assert_eq!(t.coflows[0].num_flows(), 3);
    }

    #[test]
    fn zero_based_racks_are_accepted() {
        let text = "4 1\n1 0 1 0 1 3:1\n";
        let t = parse(text).unwrap();
        assert_eq!(t.coflows[0].flows()[0].src, 0);
        assert_eq!(t.coflows[0].flows()[0].dst, 3);
    }

    #[test]
    fn header_mismatch_is_an_error() {
        let text = "4 5\n1 0 1 1 1 2:1\n";
        let e = parse(text).unwrap_err();
        assert!(e.message.contains("declares"));
    }

    #[test]
    fn out_of_range_rack_is_an_error() {
        let text = "4 1\n1 0 1 9 1 2:1\n";
        assert!(parse(text).is_err());
    }

    #[test]
    fn malformed_reducer_is_an_error() {
        let text = "4 1\n1 0 1 1 1 2-1\n";
        let e = parse(text).unwrap_err();
        assert_eq!(e.line, 2);
    }

    #[test]
    fn roundtrip_through_write() {
        let t = parse(SAMPLE).unwrap();
        let t2 = parse(&write(t.ports, &t.coflows)).unwrap();
        assert_eq!(t2.coflows.len(), t.coflows.len());
        for (a, b) in t.coflows.iter().zip(&t2.coflows) {
            assert_eq!(a.id(), b.id());
            assert_eq!(a.arrival(), b.arrival());
            assert_eq!(a.total_bytes(), b.total_bytes());
            assert_eq!(a.category(), b.category());
        }
    }

    #[test]
    fn empty_input_is_an_error() {
        assert!(parse("").is_err());
        assert!(parse("   \n  ").is_err());
    }
}
