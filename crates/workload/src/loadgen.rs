//! Seeded high-rate arrival generator for daemon soak tests.
//!
//! [`crate::synth`] reproduces the paper's trace *shape* — 526 heavy
//! shuffles over an hour. Soaking the serving path needs the opposite
//! profile: hundreds of thousands of mostly-small Coflows arriving fast
//! enough to keep the admission pipeline under pressure, each cheap
//! enough to schedule that a million-coflow run finishes in minutes.
//! [`generate_load`] produces exactly that — Poisson arrivals at a
//! configurable rate, a size mixture dominated by small unicasts with a
//! heavy minority of wider transfers, and (optionally) flows confined to
//! port groups so the sharded `portgroups:<G>` backend can replan
//! partitions concurrently.
//!
//! Arrivals are quantized to whole milliseconds: the JSONL wire format
//! ([`to_jsonl`]) carries `arrival_ms`, so quantizing in the generator
//! makes a daemon replay of the rendered stream *byte-identical* to an
//! offline replay of the returned `Vec<Coflow>` — the soak harness pins
//! its correctness on that equality.

use ocs_model::{Coflow, Time};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt::Write as _;

/// Parameters for [`generate_load`]. Defaults give a 64-port fabric
/// soaked at 2 000 Coflows/s.
#[derive(Clone, Copy, Debug)]
pub struct LoadgenConfig {
    /// Fabric ports (default 64).
    pub ports: usize,
    /// Coflows to generate (default 100 000).
    pub coflows: u64,
    /// Mean arrival rate, Coflows per second of virtual time
    /// (default 2 000).
    pub rate_per_sec: f64,
    /// When non-zero, every flow stays inside its `group_ports`-wide
    /// port group (`src` and `dst` share `port / group_ports`), so the
    /// trace is admissible on a `portgroups:<G>` sharded backend.
    pub group_ports: usize,
    /// Fraction of Coflows drawn from the heavy multi-flow population
    /// (default 0.05).
    pub heavy_fraction: f64,
    /// RNG seed; identical seeds yield identical traces.
    pub seed: u64,
}

impl Default for LoadgenConfig {
    fn default() -> LoadgenConfig {
        LoadgenConfig {
            ports: 64,
            coflows: 100_000,
            rate_per_sec: 2_000.0,
            group_ports: 0,
            heavy_fraction: 0.05,
            seed: 0x10ad,
        }
    }
}

const MB: u64 = 1_000_000;

/// Pick a (src, dst) pair with `src != dst`, confined to one port group
/// when `group_ports` is non-zero.
fn pick_pair(rng: &mut StdRng, ports: usize, group_ports: usize) -> (usize, usize) {
    if group_ports == 0 || group_ports >= ports {
        let src = rng.gen_range(0..ports);
        let mut dst = rng.gen_range(0..ports - 1);
        if dst >= src {
            dst += 1;
        }
        return (src, dst);
    }
    // Groups may be ragged at the top of the port range; re-derive the
    // group width actually available.
    let groups = ports.div_ceil(group_ports);
    let g = rng.gen_range(0..groups);
    let base = g * group_ports;
    let width = group_ports.min(ports - base);
    if width < 2 {
        // A one-port tail group cannot host a flow; fall back to group 0.
        return pick_pair_in(rng, 0, group_ports.min(ports));
    }
    pick_pair_in(rng, base, width)
}

fn pick_pair_in(rng: &mut StdRng, base: usize, width: usize) -> (usize, usize) {
    let src = base + rng.gen_range(0..width);
    let mut dst = base + rng.gen_range(0..width - 1);
    if dst >= src {
        dst += 1;
    }
    (src, dst)
}

/// Generate the soak trace: `config.coflows` Coflows with Poisson
/// arrivals (quantized to whole ms) at `config.rate_per_sec`.
///
/// The size mixture: `1 - heavy_fraction` of Coflows are single-flow
/// unicasts of 1–4 MB (the admission-throughput stressor); the rest are
/// 2–6-flow transfers of 4–32 MB per flow (enough work that the fabric
/// stays busy and completions interleave with admissions).
pub fn generate_load(config: &LoadgenConfig) -> Vec<Coflow> {
    assert!(config.ports >= 2, "need at least 2 ports");
    assert!(config.rate_per_sec > 0.0);
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut t = 0.0f64;
    let mut out = Vec::with_capacity(config.coflows as usize);
    for id in 0..config.coflows {
        t += -(rng.gen_range(1e-12..1.0f64)).ln() / config.rate_per_sec;
        let arrival_ms = (t * 1_000.0) as u64;
        let mut b = Coflow::builder(id).arrival(Time::from_millis(arrival_ms));
        if rng.gen::<f64>() < config.heavy_fraction {
            let flows = rng.gen_range(2usize..=6);
            for _ in 0..flows {
                let (src, dst) = pick_pair(&mut rng, config.ports, config.group_ports);
                b = b.flow(src, dst, rng.gen_range(4u64..=32) * MB);
            }
        } else {
            let (src, dst) = pick_pair(&mut rng, config.ports, config.group_ports);
            b = b.flow(src, dst, rng.gen_range(1u64..=4) * MB);
        }
        out.push(b.build());
    }
    out
}

/// Render Coflows as the daemon's JSONL wire format, one arrival per
/// line: `{"id": N, "arrival_ms": M, "flows": [[src, dst, bytes], …]}`.
///
/// Panics if an arrival is not whole-millisecond — [`generate_load`]
/// always quantizes, and sub-ms arrivals would silently truncate and
/// break the replay-equals-offline guarantee.
pub fn to_jsonl(coflows: &[Coflow]) -> String {
    let mut out = String::with_capacity(coflows.len() * 64);
    for c in coflows {
        let ps = c.arrival().as_ps();
        assert_eq!(ps % ocs_model::time::PS_PER_MS, 0, "whole-ms arrival");
        let ms = ps / ocs_model::time::PS_PER_MS;
        write!(
            out,
            "{{\"id\": {}, \"arrival_ms\": {}, \"flows\": [",
            c.id(),
            ms
        )
        .expect("string");
        for (i, f) in c.flows().iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            write!(out, "[{}, {}, {}]", f.src, f.dst, f.bytes).expect("string");
        }
        out.push_str("]}\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let cfg = LoadgenConfig {
            coflows: 500,
            ..LoadgenConfig::default()
        };
        assert_eq!(generate_load(&cfg), generate_load(&cfg));
        let other = generate_load(&LoadgenConfig { seed: 7, ..cfg });
        assert_ne!(generate_load(&cfg), other);
    }

    #[test]
    fn arrivals_are_whole_ms_and_nondecreasing() {
        let cs = generate_load(&LoadgenConfig {
            coflows: 2_000,
            ..LoadgenConfig::default()
        });
        assert_eq!(cs.len(), 2_000);
        for w in cs.windows(2) {
            assert!(w[0].arrival() <= w[1].arrival());
        }
        for c in &cs {
            assert_eq!(
                c.arrival().as_ps() % ocs_model::time::PS_PER_MS,
                0,
                "whole ms"
            );
        }
        // 2 000 Coflows at 2 000/s span about a second of virtual time.
        let last = cs.last().unwrap().arrival().as_secs_f64();
        assert!((0.5..2.0).contains(&last), "horizon {last}");
    }

    #[test]
    fn group_local_mode_confines_every_flow() {
        let cfg = LoadgenConfig {
            ports: 64,
            coflows: 3_000,
            group_ports: 16,
            ..LoadgenConfig::default()
        };
        for c in generate_load(&cfg) {
            for f in c.flows() {
                assert_eq!(f.src / 16, f.dst / 16, "flow crosses groups");
                assert_ne!(f.src, f.dst);
            }
        }
    }

    #[test]
    fn jsonl_renders_one_line_per_coflow() {
        let cs = generate_load(&LoadgenConfig {
            coflows: 50,
            ..LoadgenConfig::default()
        });
        let jsonl = to_jsonl(&cs);
        assert_eq!(jsonl.lines().count(), 50);
        assert!(jsonl.lines().all(|l| l.starts_with("{\"id\": ")));
        assert!(jsonl.contains("\"arrival_ms\": "));
    }
}
