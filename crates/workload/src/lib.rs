//! # ocs-workload — Coflow workloads for the Sunflow evaluation
//!
//! * [`trace`] — parser/writer for the public Facebook `coflow-benchmark`
//!   format, so the real one-hour production trace can be dropped in.
//! * [`synth`] — a seeded synthetic generator calibrated to the paper's
//!   published aggregates (Table 4 category mix, M2M byte dominance,
//!   heavy-tailed sizes, ≈12 % idleness at 1 Gbps), making the repository
//!   self-contained.
//! * [`perturb`] — the ±5 % size perturbation of §5.1.
//! * [`idleness`] — the network-idleness metric and the byte-scaling
//!   procedure behind Figure 8's load settings.
//! * [`loadgen`] — a seeded high-rate arrival generator (with JSONL
//!   rendering) for soaking the `ocs-daemond` serving path.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod idleness;
pub mod loadgen;
pub mod perturb;
pub mod synth;
pub mod trace;

pub use idleness::{network_idleness, scale_to_idleness};
pub use loadgen::{generate_load, to_jsonl, LoadgenConfig};
pub use perturb::perturb_sizes;
pub use synth::{generate, SynthConfig};
pub use trace::{parse, write, ParseError, Trace, MB};

/// The paper's default workload: a synthetic Facebook-like trace with
/// ±5 % size perturbation applied, on the default seed.
pub fn paper_workload() -> Vec<ocs_model::Coflow> {
    perturb_sizes(
        &generate(&SynthConfig::default()),
        0.05,
        SynthConfig::default().seed ^ 0xabcd,
    )
}
