//! Pipelined arrival ingestion: a bounded admission channel with typed
//! backpressure and batched submission, in front of the synchronous
//! scheduling core.
//!
//! [`run_to_completion`](crate::server::run_to_completion) parses,
//! submits and advances one line at a time on one thread — correct, but
//! the scheduler sits idle while JSON parses and the parser sits idle
//! while circuits plan. [`run_pipelined`] splits the work across three
//! stages connected by channels:
//!
//! ```text
//!  reader thread          admission loop (caller's thread)   writer thread
//!  ─────────────          ────────────────────────────────   ─────────────
//!  parse JSONL ──bounded──▶ drain batch ▶ submit ▶ advance ──▶ ack mux
//!  lines        channel     (the only thread touching the     (re-orders
//!  (typed backpressure       Daemon — scheduling stays         acks to
//!   when full)               synchronous + deterministic)      line order)
//! ```
//!
//! * The admission channel is **bounded** ([`PipelineConfig::channel_capacity`]).
//!   When it fills, [`OnFull::Reject`] refuses the line with a typed
//!   [`RejectReason::Backpressure`] ack — explicit load shedding instead
//!   of a silent stall — while [`OnFull::Wait`] blocks the reader
//!   (lossless, for file replay).
//! * The admission loop drains the channel in **batches** (up to
//!   [`PipelineConfig::batch_max`] per step), submits every arrival in
//!   stream order, then advances the virtual clock once per batch.
//!   Backends queue future arrivals internally and process them at their
//!   arrival instants, so batch-submit-then-advance replays byte-identically
//!   to the one-line-at-a-time loop on ordered traces (the engine's
//!   batch entry points rely on the same property); `pipelined_matches_
//!   sequential_replay` below pins it.
//! * Acks from both stages are re-sequenced to input-line order by an
//!   [`AckMux`] min-heap on the writer thread, so clients still read one
//!   verdict per line, in order, with no line lost.
//!
//! One semantic difference from the sequential loop, by design: the
//! clock advances per batch, not per line, so a line whose `arrival_ms`
//! precedes an *earlier line in the same batch* is admitted at its own
//! arrival instant instead of being rejected as `arrival_in_past` — a
//! bounded out-of-order tolerance window of one batch.
//!
//! Wall-clock **admission-to-schedule latency** (channel enqueue →
//! backend submission) is recorded per admitted Coflow into
//! [`Telemetry::admit_latency`](crate::service::Telemetry::admit_latency)
//! (p50/p99/p999 in the status dump and `BENCH_daemon.json`).

use crate::jsonl::{parse_line, ArrivalSpec};
use crate::service::{Daemon, RejectReason};
use ocs_model::Time;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::io::{BufRead, Write};
use std::sync::mpsc::{channel, sync_channel, Receiver, Sender, TrySendError};
use std::time::Instant;

/// What to do when the bounded admission channel is full.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum OnFull {
    /// Refuse the arrival with a typed [`RejectReason::Backpressure`]
    /// ack — explicit load shedding for live feeds.
    #[default]
    Reject,
    /// Block the reader until the admission loop catches up — lossless
    /// replay for files and benchmarks (the wait is still counted).
    Wait,
}

/// Tuning for [`run_pipelined`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PipelineConfig {
    /// Bound of the admission channel (arrivals parsed but not yet
    /// submitted). The backpressure threshold.
    pub channel_capacity: usize,
    /// Most arrivals submitted per admission step before the clock
    /// advances.
    pub batch_max: usize,
    /// Full-channel policy.
    pub on_full: OnFull,
}

impl Default for PipelineConfig {
    fn default() -> PipelineConfig {
        PipelineConfig {
            channel_capacity: 1_024,
            batch_max: 256,
            on_full: OnFull::Reject,
        }
    }
}

/// What a [`run_pipelined`] pass saw.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PipelineReport {
    /// Non-blank input lines consumed.
    pub lines: u64,
    /// Lines that failed to parse.
    pub parse_errors: u64,
    /// Coflows admitted.
    pub accepted: u64,
    /// Submissions refused by admission control (excluding backpressure).
    pub rejected: u64,
    /// Arrivals refused at the full channel ([`OnFull::Reject`]).
    pub backpressure_rejects: u64,
    /// Blocking waits at the full channel ([`OnFull::Wait`]).
    pub backpressure_waits: u64,
    /// Acks written (or counted, without an ack sink).
    pub acked: u64,
    /// Admission steps (batches drained from the channel).
    pub batches: u64,
    /// Largest single batch.
    pub max_batch: u64,
    /// Scheduling events processed, including the graceful drain.
    pub events: u64,
}

impl PipelineReport {
    /// Lines that never received a verdict — always zero: every consumed
    /// line is acked exactly once (parse error, backpressure, accept or
    /// reject).
    pub fn lost_acks(&self) -> u64 {
        self.lines.saturating_sub(self.acked)
    }
}

/// One parsed arrival in flight between the reader and the admission
/// loop.
struct Envelope {
    /// Ack sequence number (dense, line order).
    seq: u64,
    /// 1-based input line number, for the ack.
    lineno: u64,
    spec: ArrivalSpec,
    /// When the arrival entered the channel — the admission-to-schedule
    /// latency clock starts here.
    enqueued: Instant,
}

/// Re-sequences acks to input-line order: acks arrive keyed by a dense
/// `seq` from two producers (reader and admission loop) and are written
/// as soon as the next-in-order ack is present.
struct AckMux {
    next: u64,
    heap: BinaryHeap<Reverse<(u64, String)>>,
}

impl AckMux {
    fn new() -> AckMux {
        AckMux {
            next: 0,
            heap: BinaryHeap::new(),
        }
    }

    /// Buffer `(seq, line)` and write every now-contiguous ack. Returns
    /// how many lines were written.
    fn push(&mut self, seq: u64, line: String, out: &mut dyn Write) -> std::io::Result<u64> {
        self.heap.push(Reverse((seq, line)));
        let mut written = 0u64;
        while self
            .heap
            .peek()
            .is_some_and(|Reverse((s, _))| *s == self.next)
        {
            let Reverse((_, l)) = self.heap.pop().expect("peeked");
            writeln!(out, "{l}")?;
            self.next += 1;
            written += 1;
        }
        if written > 0 {
            out.flush()?;
        }
        Ok(written)
    }
}

/// What the reader thread tallied.
#[derive(Default)]
struct ReaderStats {
    lines: u64,
    parse_errors: u64,
    backpressure_rejects: u64,
    backpressure_waits: u64,
}

fn error_ack(lineno: u64, err: &str) -> String {
    format!(
        "{{\"line\": {}, \"ok\": false, \"error\": \"{}\"}}",
        lineno,
        err.replace('\\', "\\\\").replace('"', "\\\""),
    )
}

fn verdict_ack(lineno: u64, id: u64, verdict: Result<(), RejectReason>) -> String {
    match verdict {
        Ok(()) => format!("{{\"line\": {lineno}, \"id\": {id}, \"ok\": true}}"),
        Err(reason) => {
            format!("{{\"line\": {lineno}, \"id\": {id}, \"ok\": false, \"reject\": \"{reason}\"}}")
        }
    }
}

/// Parse lines off `input`, pushing envelopes into the bounded channel
/// and acking parse errors / backpressure rejects directly.
fn read_lines(
    input: impl BufRead,
    tx: &std::sync::mpsc::SyncSender<Envelope>,
    acks: &Sender<(u64, String)>,
    on_full: OnFull,
) -> std::io::Result<ReaderStats> {
    let mut stats = ReaderStats::default();
    let mut seq = 0u64;
    for (idx, line) in input.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        stats.lines += 1;
        let lineno = idx as u64 + 1;
        let spec = match parse_line(trimmed) {
            Ok(spec) => spec,
            Err(e) => {
                stats.parse_errors += 1;
                let _ = acks.send((seq, error_ack(lineno, &e.to_string())));
                seq += 1;
                continue;
            }
        };
        let mut env = Envelope {
            seq,
            lineno,
            spec,
            enqueued: Instant::now(),
        };
        match tx.try_send(env) {
            Ok(()) => {}
            Err(TrySendError::Disconnected(_)) => break,
            Err(TrySendError::Full(returned)) => match on_full {
                OnFull::Reject => {
                    stats.backpressure_rejects += 1;
                    let _ = acks.send((
                        seq,
                        verdict_ack(lineno, returned.spec.id, Err(RejectReason::Backpressure)),
                    ));
                }
                OnFull::Wait => {
                    stats.backpressure_waits += 1;
                    env = returned;
                    env.enqueued = Instant::now();
                    if tx.send(env).is_err() {
                        break;
                    }
                }
            },
        }
        seq += 1;
    }
    Ok(stats)
}

/// Drain acks into `out` (when given), restoring line order. Returns the
/// number of acks seen.
fn write_acks(rx: Receiver<(u64, String)>, out: Option<&mut dyn Write>) -> std::io::Result<u64> {
    let mut acked = 0u64;
    match out {
        Some(out) => {
            let mut mux = AckMux::new();
            let mut written = 0u64;
            for (seq, line) in rx {
                acked += 1;
                written += mux.push(seq, line, out)?;
            }
            debug_assert_eq!(written, acked, "every ack seq is dense and written");
        }
        None => {
            for _ in rx {
                acked += 1;
            }
        }
    }
    Ok(acked)
}

/// Feed every line of `input` to `daemon` through the bounded pipelined
/// front end, ack each line on `ack_out` (in input order), then drain
/// gracefully. Blank lines and `#` comments are skipped, as in
/// [`run_to_completion`](crate::server::run_to_completion).
///
/// On an ordered fault-free trace this replays byte-identically to the
/// sequential loop; under load the bounded channel sheds (or, with
/// [`OnFull::Wait`], paces) the producer instead of stalling silently.
pub fn run_pipelined<R, W>(
    daemon: &mut Daemon,
    input: R,
    ack_out: Option<&mut W>,
    config: &PipelineConfig,
) -> std::io::Result<PipelineReport>
where
    R: BufRead + Send,
    W: Write + Send,
{
    let capacity = config.channel_capacity.max(1);
    let batch_max = config.batch_max.max(1);
    let (tx, rx) = sync_channel::<Envelope>(capacity);
    let (ack_tx, ack_rx) = channel::<(u64, String)>();
    let on_full = config.on_full;

    let mut report = PipelineReport::default();
    let (reader_out, writer_out) = std::thread::scope(|scope| {
        let reader_acks = ack_tx.clone();
        let reader = scope.spawn(move || {
            let stats = read_lines(input, &tx, &reader_acks, on_full);
            drop(tx); // disconnect: the admission loop finishes its drain
            stats
        });
        let writer = scope.spawn(move || write_acks(ack_rx, ack_out.map(|w| w as &mut dyn Write)));

        // The admission loop: the only stage touching the daemon.
        let mut stream_clock = daemon.now();
        let mut batch = Vec::with_capacity(batch_max);
        while let Ok(first) = rx.recv() {
            batch.push(first);
            while batch.len() < batch_max {
                match rx.try_recv() {
                    Ok(env) => batch.push(env),
                    Err(_) => break,
                }
            }
            report.batches += 1;
            report.max_batch = report.max_batch.max(batch.len() as u64);
            for env in batch.drain(..) {
                if let Some(ms) = env.spec.arrival_ms {
                    stream_clock = stream_clock.max(Time::from_millis(ms));
                }
                let verdict = daemon.submit(env.spec.to_coflow(stream_clock));
                match verdict {
                    Ok(()) => {
                        report.accepted += 1;
                        daemon.record_admit_latency_ns(
                            u64::try_from(env.enqueued.elapsed().as_nanos()).unwrap_or(u64::MAX),
                        );
                    }
                    Err(_) => report.rejected += 1,
                }
                let _ = ack_tx.send((env.seq, verdict_ack(env.lineno, env.spec.id, verdict)));
            }
            if stream_clock > daemon.now() {
                report.events += daemon.advance_to(stream_clock);
            }
        }
        drop(ack_tx); // last sender: the writer drains and exits
        (
            reader.join().expect("reader"),
            writer.join().expect("writer"),
        )
    });

    let stats = reader_out?;
    report.lines = stats.lines;
    report.parse_errors = stats.parse_errors;
    report.backpressure_rejects = stats.backpressure_rejects;
    report.backpressure_waits = stats.backpressure_waits;
    daemon.note_backpressure(stats.backpressure_rejects);
    report.acked = writer_out?;
    report.events += daemon.drain();
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::run_to_completion;
    use crate::service::{Daemon, DaemonConfig};
    use ocs_model::{Bandwidth, Dur, Fabric};
    use std::io::Cursor;

    fn daemon() -> Daemon {
        Daemon::new(&DaemonConfig {
            fabric: Fabric::new(4, Bandwidth::GBPS, Dur::from_micros(20)),
            ..DaemonConfig::default()
        })
    }

    /// An ordered trace exercising accepts, a duplicate reject, a parse
    /// error and a clockless line.
    fn trace(n: u64) -> String {
        let mut out = String::from("# pipelined ingest test trace\n");
        for i in 0..n {
            out.push_str(&format!(
                "{{\"id\": {}, \"arrival_ms\": {}, \"flows\": [[{}, {}, {}]]}}\n",
                i,
                i * 2,
                i % 4,
                (i + 1) % 4,
                200_000 + i * 1_000,
            ));
        }
        out.push_str("{\"id\": 1, \"arrival_ms\": 999, \"flows\": [[0, 1, 1]]}\n"); // duplicate
        out.push_str("definitely not json\n");
        out.push_str(&format!("{{\"id\": {n}, \"flows\": [[2, 0, 500000]]}}\n")); // stream clock
        out
    }

    #[test]
    fn ack_mux_restores_line_order() {
        let mut out = Vec::new();
        let mut mux = AckMux::new();
        assert_eq!(mux.push(2, "c".into(), &mut out).unwrap(), 0);
        assert_eq!(mux.push(1, "b".into(), &mut out).unwrap(), 0);
        assert!(out.is_empty(), "nothing until seq 0 lands");
        assert_eq!(mux.push(0, "a".into(), &mut out).unwrap(), 3);
        assert_eq!(mux.push(3, "d".into(), &mut out).unwrap(), 1);
        assert_eq!(String::from_utf8(out).unwrap(), "a\nb\nc\nd\n");
    }

    #[test]
    fn pipelined_matches_sequential_replay() {
        let input = trace(40);

        let mut seq_daemon = daemon();
        let mut seq_acks: Vec<u8> = Vec::new();
        let seq = run_to_completion(
            &mut seq_daemon,
            Cursor::new(input.clone()),
            Some(&mut seq_acks as &mut dyn Write),
        )
        .unwrap();

        let mut pipe_daemon = daemon();
        let mut pipe_acks: Vec<u8> = Vec::new();
        // A tiny channel forces real hand-off (Wait keeps it lossless).
        let cfg = PipelineConfig {
            channel_capacity: 2,
            batch_max: 4,
            on_full: OnFull::Wait,
        };
        let pipe = run_pipelined(
            &mut pipe_daemon,
            Cursor::new(input),
            Some(&mut pipe_acks),
            &cfg,
        )
        .unwrap();

        assert_eq!(pipe.lines, seq.lines);
        assert_eq!(pipe.parse_errors, seq.parse_errors);
        assert_eq!(pipe.accepted, seq.accepted);
        assert_eq!(pipe.rejected, seq.rejected);
        assert_eq!(pipe.lost_acks(), 0);
        // Ack streams are identical line for line: nothing lost, nothing
        // reordered.
        assert_eq!(
            String::from_utf8(pipe_acks).unwrap(),
            String::from_utf8(seq_acks).unwrap()
        );
        // And the schedules are byte-identical: batch-submit-then-advance
        // queues future arrivals exactly as the per-line loop does.
        let key = |d: &Daemon| {
            d.completions()
                .iter()
                .map(|c| c.outcome.clone())
                .collect::<Vec<_>>()
        };
        assert_eq!(key(&pipe_daemon), key(&seq_daemon));
        assert_eq!(
            pipe_daemon.telemetry().admit_latency.count(),
            pipe.accepted,
            "one admission latency sample per accepted coflow"
        );
        assert_eq!(seq_daemon.telemetry().admit_latency.count(), 0);
    }

    #[test]
    fn full_channel_sheds_with_typed_backpressure_and_drains_clean() {
        // A single-slot channel and single-arrival batches in front of a
        // producer with zero per-line cost: the reader outruns admission
        // (which plans real circuits per accept), so the channel fills.
        let mut d = daemon();
        let mut acks: Vec<u8> = Vec::new();
        let input: String = (0..4_000)
            .map(|i| {
                format!(
                    "{{\"id\": {}, \"arrival_ms\": {}, \"flows\": [[{}, {}, 400000]]}}\n",
                    i,
                    i / 8,
                    i % 4,
                    (i + 1) % 4,
                )
            })
            .collect();
        let cfg = PipelineConfig {
            channel_capacity: 1,
            batch_max: 1,
            on_full: OnFull::Reject,
        };
        let report = run_pipelined(&mut d, Cursor::new(input), Some(&mut acks), &cfg).unwrap();

        assert_eq!(report.lines, 4_000);
        assert!(
            report.backpressure_rejects > 0,
            "a full channel must shed: {report:?}"
        );
        // Exactly one verdict per line — nothing dropped, nothing double-acked.
        assert_eq!(
            report.accepted + report.rejected + report.backpressure_rejects,
            report.lines
        );
        assert_eq!(report.lost_acks(), 0);
        let acks = String::from_utf8(acks).unwrap();
        assert_eq!(acks.lines().count() as u64, report.lines);
        assert!(acks.contains("\"reject\": \"backpressure\""));
        // Acks come back in input-line order despite two producers.
        let linenos: Vec<u64> = acks
            .lines()
            .map(|l| {
                let rest = l.strip_prefix("{\"line\": ").unwrap();
                rest[..rest.find(',').unwrap()].parse().unwrap()
            })
            .collect();
        assert!(linenos.windows(2).all(|w| w[0] < w[1]), "line order");
        // The daemon's reject counters carry the shed arrivals.
        assert_eq!(
            d.telemetry().rejected[RejectReason::Backpressure.index()],
            report.backpressure_rejects
        );
        // Drain-after-pressure: every admitted coflow completed.
        assert!(d.is_idle());
        assert_eq!(d.telemetry().completed, report.accepted);
    }

    #[test]
    fn wait_mode_is_lossless_in_stream_order() {
        let n = 600u64;
        let input: String = (0..n)
            .map(|i| {
                format!(
                    "{{\"id\": {}, \"arrival_ms\": {}, \"flows\": [[{}, {}, 300000]]}}\n",
                    i,
                    i * 3,
                    i % 4,
                    (i + 2) % 4,
                )
            })
            .collect();
        let mut d = daemon();
        let cfg = PipelineConfig {
            channel_capacity: 2,
            batch_max: 8,
            on_full: OnFull::Wait,
        };
        let report = run_pipelined(&mut d, Cursor::new(input), None::<&mut Vec<u8>>, &cfg).unwrap();
        // Lossless: every line admitted (strictly increasing arrivals can
        // only be rejected if the pipeline reordered or dropped them).
        assert_eq!(report.accepted, n);
        assert_eq!(report.rejected, 0);
        assert_eq!(report.backpressure_rejects, 0);
        assert_eq!(report.lost_acks(), 0);
        assert_eq!(d.telemetry().completed, n);
        assert!(report.batches > 0 && report.max_batch >= 1);
    }
}
