//! `ocs-daemond` — the online Coflow scheduling daemon.
//!
//! ```text
//! ocs-daemond run [OPTIONS]      replay/serve a JSONL arrival stream
//! ocs-daemond gen [OPTIONS]      emit a synthetic JSONL trace to stdout
//! ocs-daemond loadgen [OPTIONS]  soak the pipelined serving path
//! ```
//!
//! `run` reads arrivals from `--input FILE` (`-` = stdin, the default)
//! or accepts one TCP connection with `--listen ADDR`, schedules them
//! on a virtual-clock fabric, drains gracefully at EOF, and dumps
//! telemetry via `--status-json PATH` and/or `--prom PATH` (`-` =
//! stdout). `--pipelined` swaps the synchronous per-line loop for the
//! bounded-channel front end (`--channel-capacity`, `--batch-max`,
//! `--on-full reject|wait`). Seeded fault injection is enabled with the
//! `--fault-*` flags. `gen` turns `ocs-workload`'s Poisson/Table-4
//! generator into a trace file `run` can consume. `loadgen` generates a
//! seeded high-rate arrival stream and drives it through the pipelined
//! front end in-process, reporting admission throughput and
//! admission-to-schedule latency quantiles — the daemon's soak harness.

use ocs_daemon::{
    run_pipelined, run_to_completion, ArrivalSpec, Daemon, DaemonConfig, IngestMode, OnFull,
    PipelineConfig, PolicyKind, ServeReport, TcpServer,
};
use ocs_model::time::PS_PER_MS;
use ocs_model::{Bandwidth, Dur, Fabric};
use ocs_sim::ActiveCircuitPolicy;
use ocs_workload::{LoadgenConfig, SynthConfig};
use std::fs::File;
use std::io::{BufReader, Write};
use std::process::ExitCode;
use sunflow_core::GuardConfig;

const USAGE: &str = "\
ocs-daemond — online Coflow scheduling service (Sunflow and baselines)

USAGE:
  ocs-daemond run [OPTIONS]      serve/replay a JSONL arrival stream
  ocs-daemond gen [OPTIONS]      emit a synthetic JSONL trace to stdout
  ocs-daemond loadgen [OPTIONS]  soak the pipelined serving path

run OPTIONS:
  --input PATH            arrival JSONL file, '-' for stdin (default '-')
  --listen ADDR           serve one TCP connection instead of --input
  --ports N               fabric ports (default 150)
  --bandwidth-gbps N      link rate (default 1)
  --delta-us N            reconfiguration delay δ in µs (default 1000)
  --backend NAME          sunflow | sunflow:<K>[:<assign>] | kcore:<K> |
                          hybrid:<split>[:<frac>] | solstice | tms | edmond |
                          varys | aalo | fair
                          (default sunflow; <assign> one of hash,
                          round-robin, least-loaded, rank-pack; <split> one
                          of non-splitting, threshold, solver; <frac> the
                          packet network's bandwidth fraction, default 0.1)
  --policy NAME           shortest | longest | fcfs (default shortest)
  --active NAME           yield | keep | preempt (default yield)
  --guard T_MS,TAU_MS     starvation guard period and shared window
  --max-queue N           admission queue depth cap (default 4096)
  --max-outstanding-secs F  outstanding transmit-demand cap
  --replan-threads N      worker threads for parallel replans / shard
                          advances (default 0 = all available cores)
  --pipelined             ingest through the bounded-channel front end
  --channel-capacity N    admission channel bound (default 1024)
  --batch-max N           max arrivals admitted per step (default 256)
  --on-full MODE          reject | wait when the channel is full
                          (default reject; wait is lossless)
  --fault-seed N          fault stream seed (default 0)
  --fault-setup-pm N      circuit setup failures, per mille
  --fault-flap-pm N       port flaps, per mille
  --fault-inflate-pm N    inflated-δ events, per mille
  --status-json PATH      write final JSON status ('-' = stdout)
  --prom PATH             write final Prometheus text ('-' = stdout)
  --acks                  echo per-line acks on stdout (file/stdin mode)
  --quiet                 suppress the stderr summary

gen OPTIONS:
  --coflows N             number of Coflows (default 526)
  --ports N               fabric ports (default 150)
  --seed N                workload seed (default 0x50f10)
  --horizon-secs F        arrival horizon (default 3600)

loadgen OPTIONS:
  --coflows N             number of Coflows (default 100000)
  --ports N               fabric ports (default 64)
  --bandwidth-gbps N      link rate (default 10)
  --delta-us N            reconfiguration delay δ in µs (default 100:
                          transfers must dwarf δ for the soak rate)
  --rate F                arrivals per second of virtual time (default 2000)
  --seed N                trace seed (default 0x10ad)
  --group-ports N         confine flows to N-port groups (0 = off); pairs
                          with --backend portgroups:<G>
  --heavy-frac F          heavy multi-flow Coflow fraction (default 0.05)
  --backend NAME          scheduling backend (default sunflow)
  --replan-threads N      as for run
  --channel-capacity / --batch-max / --on-full   as for run
                          (default --on-full wait: soak is lossless)
  --emit                  print the JSONL trace to stdout instead of
                          running the soak (pipe into `run`)
  --status-json PATH      write final JSON status ('-' = stdout)
  --quiet                 suppress the stderr summary
";

fn fail(msg: &str) -> ExitCode {
    eprintln!("ocs-daemond: {msg}");
    eprintln!("run `ocs-daemond --help` for usage");
    ExitCode::from(2)
}

/// Pull the value of `--flag VALUE`, parsed; `Err` carries the message.
struct Args {
    argv: Vec<String>,
    pos: usize,
}

impl Args {
    fn next(&mut self) -> Option<String> {
        let a = self.argv.get(self.pos).cloned();
        if a.is_some() {
            self.pos += 1;
        }
        a
    }

    fn value(&mut self, flag: &str) -> Result<String, String> {
        self.next()
            .ok_or_else(|| format!("{flag} requires a value"))
    }

    fn parsed<T: std::str::FromStr>(&mut self, flag: &str) -> Result<T, String>
    where
        T::Err: std::fmt::Display,
    {
        let raw = self.value(flag)?;
        raw.parse()
            .map_err(|e| format!("{flag}: cannot parse {raw:?}: {e}"))
    }
}

fn parse_guard(raw: &str) -> Result<GuardConfig, String> {
    let (t, tau) = raw
        .split_once(',')
        .ok_or_else(|| format!("--guard expects T_MS,TAU_MS, got {raw:?}"))?;
    let period: u64 = t
        .trim()
        .parse()
        .map_err(|e| format!("--guard period: {e}"))?;
    let tau: u64 = tau
        .trim()
        .parse()
        .map_err(|e| format!("--guard tau: {e}"))?;
    Ok(GuardConfig::new(
        Dur::from_millis(period),
        Dur::from_millis(tau),
    ))
}

fn parse_active(raw: &str) -> Result<ActiveCircuitPolicy, String> {
    match raw.to_ascii_lowercase().as_str() {
        "yield" => Ok(ActiveCircuitPolicy::Yield),
        "keep" => Ok(ActiveCircuitPolicy::Keep),
        "preempt" => Ok(ActiveCircuitPolicy::Preempt),
        other => Err(format!(
            "unknown active-circuit policy {other:?}; expected yield, keep or preempt"
        )),
    }
}

fn parse_on_full(raw: &str) -> Result<OnFull, String> {
    match raw.to_ascii_lowercase().as_str() {
        "reject" => Ok(OnFull::Reject),
        "wait" => Ok(OnFull::Wait),
        other => Err(format!(
            "unknown --on-full mode {other:?}; expected reject or wait"
        )),
    }
}

struct RunOpts {
    input: String,
    listen: Option<String>,
    config: DaemonConfig,
    pipeline: Option<PipelineConfig>,
    status_json: Option<String>,
    prom: Option<String>,
    acks: bool,
    quiet: bool,
}

fn parse_run(args: &mut Args) -> Result<RunOpts, String> {
    let mut opts = RunOpts {
        input: "-".to_string(),
        listen: None,
        config: DaemonConfig::default(),
        pipeline: None,
        status_json: None,
        prom: None,
        acks: false,
        quiet: false,
    };
    let mut pipeline = PipelineConfig::default();
    let mut pipelined = false;
    let mut ports = opts.config.fabric.ports();
    let mut gbps = 1u64;
    let mut delta_us = 1_000u64;
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--input" => opts.input = args.value("--input")?,
            "--listen" => opts.listen = Some(args.value("--listen")?),
            "--ports" => ports = args.parsed("--ports")?,
            "--bandwidth-gbps" => gbps = args.parsed("--bandwidth-gbps")?,
            "--delta-us" => delta_us = args.parsed("--delta-us")?,
            "--backend" => opts.config.backend = args.parsed("--backend")?,
            "--policy" => opts.config.policy = args.value("--policy")?.parse::<PolicyKind>()?,
            "--active" => {
                opts.config.online.active_policy = parse_active(&args.value("--active")?)?
            }
            "--guard" => opts.config.online.guard = Some(parse_guard(&args.value("--guard")?)?),
            "--replan-threads" => {
                opts.config.online.replan_threads = args.parsed("--replan-threads")?
            }
            "--pipelined" => pipelined = true,
            "--channel-capacity" => {
                pipeline.channel_capacity = args.parsed("--channel-capacity")?
            }
            "--batch-max" => pipeline.batch_max = args.parsed("--batch-max")?,
            "--on-full" => pipeline.on_full = parse_on_full(&args.value("--on-full")?)?,
            "--max-queue" => opts.config.admission.max_queue_depth = args.parsed("--max-queue")?,
            "--max-outstanding-secs" => {
                let secs: f64 = args.parsed("--max-outstanding-secs")?;
                if !secs.is_finite() || secs <= 0.0 {
                    return Err(format!(
                        "--max-outstanding-secs must be positive, got {secs}"
                    ));
                }
                opts.config.admission.max_outstanding = Dur::from_secs_f64(secs);
            }
            "--fault-seed" => opts.config.faults.seed = args.parsed("--fault-seed")?,
            "--fault-setup-pm" => {
                opts.config.faults.setup_failure_per_mille = args.parsed("--fault-setup-pm")?
            }
            "--fault-flap-pm" => {
                opts.config.faults.port_flap_per_mille = args.parsed("--fault-flap-pm")?
            }
            "--fault-inflate-pm" => {
                opts.config.faults.delta_inflation_per_mille = args.parsed("--fault-inflate-pm")?
            }
            "--status-json" => opts.status_json = Some(args.value("--status-json")?),
            "--prom" => opts.prom = Some(args.value("--prom")?),
            "--acks" => opts.acks = true,
            "--quiet" => opts.quiet = true,
            other => return Err(format!("unknown flag {other:?} for run")),
        }
    }
    if opts.config.faults.total_per_mille() > 1000 {
        return Err("fault probabilities sum to more than 1000 per mille".to_string());
    }
    opts.config.fabric = Fabric::new(
        ports,
        Bandwidth::from_gbps(gbps),
        Dur::from_micros(delta_us),
    );
    if pipelined {
        opts.pipeline = Some(pipeline);
    }
    Ok(opts)
}

/// Write `text` to `path`, with `-` meaning stdout.
fn emit(path: &str, text: &str) -> std::io::Result<()> {
    if path == "-" {
        let stdout = std::io::stdout();
        let mut out = stdout.lock();
        out.write_all(text.as_bytes())?;
        if !text.ends_with('\n') {
            out.write_all(b"\n")?;
        }
        out.flush()
    } else {
        std::fs::write(path, text)
    }
}

fn cmd_run(args: &mut Args) -> Result<ExitCode, String> {
    let opts = parse_run(args)?;
    let mut daemon = Daemon::new(&opts.config);

    let report: ServeReport = if let Some(addr) = &opts.listen {
        let server = TcpServer::bind(addr.as_str()).map_err(|e| format!("bind {addr}: {e}"))?;
        let mode = match opts.pipeline {
            Some(cfg) => IngestMode::Pipelined(cfg),
            None => IngestMode::Sequential,
        };
        if !opts.quiet {
            let bound = server
                .local_addr()
                .map_err(|e| format!("bind {addr}: {e}"))?;
            eprintln!("ocs-daemond: listening on {bound} (one connection)");
        }
        server
            .serve_one(&mut daemon, mode)
            .map_err(|e| format!("serve {addr}: {e}"))?
            .expect("no shutdown handle exists")
    } else if let Some(cfg) = opts.pipeline {
        // The pipelined reader moves to its own thread, so it takes an
        // owned stdin handle rather than StdinLock.
        let mut stdout = std::io::stdout();
        let ack = opts.acks.then_some(&mut stdout);
        if opts.input == "-" {
            run_pipelined(&mut daemon, BufReader::new(std::io::stdin()), ack, &cfg)
        } else {
            let f = File::open(&opts.input).map_err(|e| format!("open {}: {e}", opts.input))?;
            run_pipelined(&mut daemon, BufReader::new(f), ack, &cfg)
        }
        .map_err(|e| format!("ingest: {e}"))?
        .into()
    } else {
        let mut stdout;
        let mut ack: Option<&mut dyn Write> = if opts.acks {
            stdout = std::io::stdout();
            Some(&mut stdout)
        } else {
            None
        };
        if opts.input == "-" {
            let stdin = std::io::stdin();
            run_to_completion(&mut daemon, stdin.lock(), ack.take())
        } else {
            let f = File::open(&opts.input).map_err(|e| format!("open {}: {e}", opts.input))?;
            run_to_completion(&mut daemon, BufReader::new(f), ack.take())
        }
        .map_err(|e| format!("ingest: {e}"))?
    };

    if let Some(path) = &opts.status_json {
        emit(path, &daemon.status_json()).map_err(|e| format!("write {path}: {e}"))?;
    }
    if let Some(path) = &opts.prom {
        emit(path, &daemon.prometheus()).map_err(|e| format!("write {path}: {e}"))?;
    }
    if !opts.quiet {
        let t = daemon.telemetry();
        let f = daemon.fault_stats();
        eprintln!(
            "ocs-daemond: {} lines, {} admitted, {} rejected, {} backpressure, \
             {} parse errors; {} completed, drained at {}; {} faults, {} retries",
            report.lines,
            report.accepted,
            report.rejected,
            report.backpressure,
            report.parse_errors,
            t.completed,
            daemon.now(),
            f.setup_failures + f.port_flaps + f.delta_inflations,
            f.retries,
        );
    }
    let clean = daemon.is_idle() && report.parse_errors == 0;
    Ok(if clean {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

fn cmd_gen(args: &mut Args) -> Result<ExitCode, String> {
    let mut cfg = SynthConfig::default();
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--coflows" => cfg.coflows = args.parsed("--coflows")?,
            "--ports" => cfg.ports = args.parsed("--ports")?,
            "--seed" => cfg.seed = args.parsed("--seed")?,
            "--horizon-secs" => {
                cfg.horizon_secs = args.parsed("--horizon-secs")?;
                if !cfg.horizon_secs.is_finite() || cfg.horizon_secs <= 0.0 {
                    return Err("--horizon-secs must be positive".to_string());
                }
            }
            other => return Err(format!("unknown flag {other:?} for gen")),
        }
    }
    let coflows = ocs_workload::generate(&cfg);
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    for c in &coflows {
        let spec = ArrivalSpec {
            id: c.id(),
            arrival_ms: Some(c.arrival().as_ps() / PS_PER_MS),
            flows: c.flows().iter().map(|f| (f.src, f.dst, f.bytes)).collect(),
        };
        writeln!(out, "{}", spec.render()).map_err(|e| format!("stdout: {e}"))?;
    }
    out.flush().map_err(|e| format!("stdout: {e}"))?;
    eprintln!(
        "ocs-daemond: generated {} coflows on {} ports (seed {:#x})",
        coflows.len(),
        cfg.ports,
        cfg.seed
    );
    Ok(ExitCode::SUCCESS)
}

fn cmd_loadgen(args: &mut Args) -> Result<ExitCode, String> {
    let mut load = LoadgenConfig::default();
    let mut config = DaemonConfig::default();
    let mut gbps = 10u64;
    let mut delta_us = 100u64;
    let mut pipeline = PipelineConfig {
        on_full: OnFull::Wait,
        ..PipelineConfig::default()
    };
    let mut emit_trace = false;
    let mut status_json: Option<String> = None;
    let mut quiet = false;
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--coflows" => load.coflows = args.parsed("--coflows")?,
            "--ports" => load.ports = args.parsed("--ports")?,
            "--bandwidth-gbps" => gbps = args.parsed("--bandwidth-gbps")?,
            "--delta-us" => delta_us = args.parsed("--delta-us")?,
            "--rate" => {
                load.rate_per_sec = args.parsed("--rate")?;
                if !load.rate_per_sec.is_finite() || load.rate_per_sec <= 0.0 {
                    return Err("--rate must be positive".to_string());
                }
            }
            "--seed" => load.seed = args.parsed("--seed")?,
            "--group-ports" => load.group_ports = args.parsed("--group-ports")?,
            "--heavy-frac" => {
                load.heavy_fraction = args.parsed("--heavy-frac")?;
                if !(0.0..=1.0).contains(&load.heavy_fraction) {
                    return Err("--heavy-frac must be within [0, 1]".to_string());
                }
            }
            "--backend" => config.backend = args.parsed("--backend")?,
            "--replan-threads" => config.online.replan_threads = args.parsed("--replan-threads")?,
            "--channel-capacity" => {
                pipeline.channel_capacity = args.parsed("--channel-capacity")?
            }
            "--batch-max" => pipeline.batch_max = args.parsed("--batch-max")?,
            "--on-full" => pipeline.on_full = parse_on_full(&args.value("--on-full")?)?,
            "--emit" => emit_trace = true,
            "--status-json" => status_json = Some(args.value("--status-json")?),
            "--quiet" => quiet = true,
            other => return Err(format!("unknown flag {other:?} for loadgen")),
        }
    }
    let coflows = ocs_workload::generate_load(&load);
    let jsonl = ocs_workload::to_jsonl(&coflows);
    if emit_trace {
        let stdout = std::io::stdout();
        let mut out = stdout.lock();
        out.write_all(jsonl.as_bytes())
            .and_then(|()| out.flush())
            .map_err(|e| format!("stdout: {e}"))?;
        if !quiet {
            eprintln!(
                "ocs-daemond: generated {} coflows on {} ports (seed {:#x})",
                coflows.len(),
                load.ports,
                load.seed
            );
        }
        return Ok(ExitCode::SUCCESS);
    }

    config.fabric = Fabric::new(
        load.ports,
        Bandwidth::from_gbps(gbps),
        Dur::from_micros(delta_us),
    );
    let mut daemon = Daemon::new(&config);
    let wall = std::time::Instant::now();
    let report = run_pipelined(
        &mut daemon,
        std::io::Cursor::new(jsonl),
        None::<&mut std::io::Sink>,
        &pipeline,
    )
    .map_err(|e| format!("soak: {e}"))?;
    let elapsed = wall.elapsed();

    if let Some(path) = &status_json {
        emit(path, &daemon.status_json()).map_err(|e| format!("write {path}: {e}"))?;
    }
    if !quiet {
        let t = daemon.telemetry();
        let q = |p: f64| t.admit_latency.quantile(p).unwrap_or(0);
        eprintln!(
            "ocs-daemond: soaked {} coflows in {:.2}s wall ({:.0} admissions/s); \
             admit latency p50 {}ns p99 {}ns p999 {}ns; \
             {} backpressure rejects, {} backpressure waits, {} lost acks; \
             {} batches (max {}), {} completed, drained at {}",
            report.accepted,
            elapsed.as_secs_f64(),
            report.accepted as f64 / elapsed.as_secs_f64().max(1e-9),
            q(0.50),
            q(0.99),
            q(0.999),
            report.backpressure_rejects,
            report.backpressure_waits,
            report.lost_acks(),
            report.batches,
            report.max_batch,
            t.completed,
            daemon.now(),
        );
    }
    let clean = daemon.is_idle()
        && report.parse_errors == 0
        && report.lost_acks() == 0
        && daemon.telemetry().completed == report.accepted;
    Ok(if clean {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.iter().any(|a| a == "--help" || a == "-h") || argv.is_empty() {
        print!("{USAGE}");
        return if argv.is_empty() {
            ExitCode::from(2)
        } else {
            ExitCode::SUCCESS
        };
    }
    let mut args = Args { argv, pos: 0 };
    let cmd = args.next().unwrap();
    let result = match cmd.as_str() {
        "run" => cmd_run(&mut args),
        "gen" => cmd_gen(&mut args),
        "loadgen" => cmd_loadgen(&mut args),
        other => Err(format!("unknown command {other:?}")),
    };
    match result {
        Ok(code) => code,
        Err(msg) => fail(&msg),
    }
}
