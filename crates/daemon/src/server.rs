//! Arrival ingestion: drive a [`Daemon`] from a JSONL stream.
//!
//! The service reads one [`crate::jsonl::ArrivalSpec`] per line from any
//! `BufRead` — a file, stdin, or a TCP connection — and acknowledges
//! each line with a one-line JSON verdict (`ok`, `reject` + reason, or
//! `error` for unparseable input). Lines are the clock: a line carrying
//! `arrival_ms` first advances the daemon's virtual clock to that
//! instant (settling circuits and retrying faulted flows on the way),
//! so a trace file replays in arrival order exactly as a live feed
//! would. EOF triggers a graceful drain — the daemon runs until every
//! admitted Coflow completes, then reports.
//!
//! Two ingestion loops share that protocol:
//!
//! * [`run_to_completion`] — the synchronous reference path: parse,
//!   submit, advance, ack, one line at a time on one thread.
//! * [`crate::ingest::run_pipelined`] — the high-throughput path: a
//!   reader thread feeding a bounded admission channel with typed
//!   backpressure, batched submission, acks re-sequenced to line order.
//!
//! [`TcpServer`] is the front door: bind first (so the bound address is
//! known before any client connects), then serve connections one at a
//! time through either loop ([`IngestMode`]). A [`ShutdownHandle`]
//! stops the accept loop by flagging and then *connecting to wake it* —
//! no sleep-polling anywhere, so shutdown latency is bounded by the
//! kernel's accept queue, not a timer. [`serve_tcp`] keeps the original
//! one-shot convenience wrapper around all of it.

use crate::ingest::{run_pipelined, PipelineConfig};
use crate::jsonl::parse_line;
use crate::service::Daemon;
use ocs_model::Time;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// What an ingestion pass saw.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServeReport {
    /// Non-blank input lines consumed.
    pub lines: u64,
    /// Lines that failed to parse.
    pub parse_errors: u64,
    /// Coflows admitted.
    pub accepted: u64,
    /// Submissions refused by admission control.
    pub rejected: u64,
    /// Arrivals shed at the full admission channel (pipelined mode with
    /// [`crate::ingest::OnFull::Reject`]; always zero on the sequential
    /// path).
    pub backpressure: u64,
    /// Scheduling events processed, including the graceful drain.
    pub events: u64,
}

impl ServeReport {
    fn absorb(&mut self, other: ServeReport) {
        self.lines += other.lines;
        self.parse_errors += other.parse_errors;
        self.accepted += other.accepted;
        self.rejected += other.rejected;
        self.backpressure += other.backpressure;
        self.events += other.events;
    }
}

impl From<crate::ingest::PipelineReport> for ServeReport {
    fn from(p: crate::ingest::PipelineReport) -> ServeReport {
        ServeReport {
            lines: p.lines,
            parse_errors: p.parse_errors,
            accepted: p.accepted,
            rejected: p.rejected,
            backpressure: p.backpressure_rejects,
            events: p.events,
        }
    }
}

fn ack(out: &mut Option<&mut dyn Write>, line: &str) -> std::io::Result<()> {
    if let Some(w) = out.as_deref_mut() {
        writeln!(w, "{line}")?;
        w.flush()?;
    }
    Ok(())
}

/// Feed every line of `input` to `daemon`, ack each on `ack_out`, then
/// drain gracefully. Blank lines and `#` comments are skipped. Returns
/// the pass's [`ServeReport`]; the daemon retains all telemetry and
/// completions for status dumps afterwards.
pub fn run_to_completion(
    daemon: &mut Daemon,
    input: impl BufRead,
    mut ack_out: Option<&mut dyn Write>,
) -> std::io::Result<ServeReport> {
    let mut report = ServeReport::default();
    for (lineno, line) in input.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        report.lines += 1;
        let spec = match parse_line(trimmed) {
            Ok(spec) => spec,
            Err(e) => {
                report.parse_errors += 1;
                ack(
                    &mut ack_out,
                    &format!(
                        "{{\"line\": {}, \"ok\": false, \"error\": \"{}\"}}",
                        lineno + 1,
                        e.to_string().replace('\\', "\\\\").replace('"', "\\\""),
                    ),
                )?;
                continue;
            }
        };
        // The trace clock: catch the daemon up to this arrival so the
        // submission lands in the present, not the schedule's past.
        if let Some(ms) = spec.arrival_ms {
            let t = Time::from_millis(ms);
            if t > daemon.now() {
                report.events += daemon.advance_to(t);
            }
        }
        match daemon.submit_spec(&spec) {
            Ok(()) => {
                report.accepted += 1;
                ack(
                    &mut ack_out,
                    &format!(
                        "{{\"line\": {}, \"id\": {}, \"ok\": true}}",
                        lineno + 1,
                        spec.id
                    ),
                )?;
            }
            Err(reason) => {
                report.rejected += 1;
                ack(
                    &mut ack_out,
                    &format!(
                        "{{\"line\": {}, \"id\": {}, \"ok\": false, \"reject\": \"{}\"}}",
                        lineno + 1,
                        spec.id,
                        reason
                    ),
                )?;
            }
        }
    }
    report.events += daemon.drain();
    Ok(report)
}

/// Which ingestion loop a [`TcpServer`] runs per connection.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum IngestMode {
    /// [`run_to_completion`]: one line at a time, strict per-line clock.
    #[default]
    Sequential,
    /// [`run_pipelined`] with the given tuning: bounded channel, typed
    /// backpressure, batched admission.
    Pipelined(PipelineConfig),
}

/// Stops a [`TcpServer`]'s accept loop: sets the stop flag, then opens a
/// throwaway connection to the listener so the blocking `accept` returns
/// immediately. No polling, no timers — shutdown is event-driven.
#[derive(Clone, Debug)]
pub struct ShutdownHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
}

impl ShutdownHandle {
    /// Request shutdown and wake the accept loop.
    pub fn shutdown(&self) {
        self.stop.store(true, Ordering::SeqCst);
        // The wake-up call: accept() unblocks, sees the flag, exits.
        // A failure here only means the listener is already gone.
        let _ = TcpStream::connect(self.addr);
    }
}

/// A bound JSONL-over-TCP front door for a [`Daemon`].
///
/// Binding is separate from serving, so callers (and tests) learn the
/// actual address — including an OS-assigned port from `"…:0"` —
/// *before* any client tries to connect: no connect-retry loops, no
/// sleeps. Connections are served strictly one at a time because the
/// daemon's virtual clock is single-stream by construction.
#[derive(Debug)]
pub struct TcpServer {
    listener: TcpListener,
    stop: Arc<AtomicBool>,
}

impl TcpServer {
    /// Bind the listener. The port is open (clients may connect and
    /// queue) from here on.
    pub fn bind(addr: impl ToSocketAddrs) -> std::io::Result<TcpServer> {
        Ok(TcpServer {
            listener: TcpListener::bind(addr)?,
            stop: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The bound address (resolves `"…:0"` to the real port).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// A handle that stops [`TcpServer::serve`] /
    /// [`TcpServer::serve_one`] from another thread.
    pub fn shutdown_handle(&self) -> std::io::Result<ShutdownHandle> {
        Ok(ShutdownHandle {
            addr: self.local_addr()?,
            stop: Arc::clone(&self.stop),
        })
    }

    /// Accept and serve one connection: read JSONL arrivals, write
    /// per-line acks back, drain on EOF, then send the daemon's status
    /// JSON as the final line. Returns `Ok(None)` if a
    /// [`ShutdownHandle`] fired instead of a client connecting.
    pub fn serve_one(
        &self,
        daemon: &mut Daemon,
        mode: IngestMode,
    ) -> std::io::Result<Option<ServeReport>> {
        if self.stop.load(Ordering::SeqCst) {
            return Ok(None);
        }
        let (stream, _peer) = self.listener.accept()?;
        if self.stop.load(Ordering::SeqCst) {
            // The accepted "client" is the shutdown wake-up call.
            return Ok(None);
        }
        let reader = BufReader::new(stream.try_clone()?);
        let mut writer = stream;
        let report = match mode {
            IngestMode::Sequential => run_to_completion(daemon, reader, Some(&mut writer))?,
            IngestMode::Pipelined(cfg) => {
                run_pipelined(daemon, reader, Some(&mut writer), &cfg)?.into()
            }
        };
        writeln!(writer, "{}", daemon.status_json())?;
        writer.flush()?;
        Ok(Some(report))
    }

    /// Serve connections back to back until a [`ShutdownHandle`] fires,
    /// returning the reports summed over every connection.
    pub fn serve(&self, daemon: &mut Daemon, mode: IngestMode) -> std::io::Result<ServeReport> {
        let mut total = ServeReport::default();
        while let Some(report) = self.serve_one(daemon, mode)? {
            total.absorb(report);
        }
        Ok(total)
    }
}

/// Serve one TCP connection at `addr` through the sequential loop: the
/// original one-shot protocol (acks, drain, final status line). Prefer
/// [`TcpServer`] when you need the bound address or pipelined ingestion.
pub fn serve_tcp(daemon: &mut Daemon, addr: impl ToSocketAddrs) -> std::io::Result<ServeReport> {
    let server = TcpServer::bind(addr)?;
    Ok(server
        .serve_one(daemon, IngestMode::Sequential)?
        .expect("no shutdown handle exists yet"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::DaemonConfig;
    use ocs_model::{Bandwidth, Dur, Fabric};
    use std::io::Cursor;

    fn daemon() -> Daemon {
        Daemon::new(&DaemonConfig {
            fabric: Fabric::new(4, Bandwidth::GBPS, Dur::from_micros(20)),
            ..DaemonConfig::default()
        })
    }

    #[test]
    fn stream_replay_acks_and_drains() {
        let trace = "\
# demo trace
{\"id\": 0, \"arrival_ms\": 0, \"flows\": [[0, 1, 1000000]]}

{\"id\": 1, \"arrival_ms\": 5, \"flows\": [[1, 2, 2000000], [2, 3, 500000]]}
{\"id\": 1, \"arrival_ms\": 6, \"flows\": [[0, 1, 1]]}
not json at all
{\"id\": 2, \"arrival_ms\": 9, \"flows\": [[3, 0, 750000]]}
";
        let mut d = daemon();
        let mut acks = Vec::new();
        let report = run_to_completion(
            &mut d,
            Cursor::new(trace),
            Some(&mut acks as &mut dyn std::io::Write),
        )
        .unwrap();
        assert_eq!(report.lines, 5);
        assert_eq!(report.parse_errors, 1);
        assert_eq!(report.accepted, 3);
        assert_eq!(report.rejected, 1, "duplicate id 1 is refused");
        assert!(d.is_idle());
        assert_eq!(d.telemetry().completed, 3);

        let acks = String::from_utf8(acks).unwrap();
        let lines: Vec<&str> = acks.lines().collect();
        assert_eq!(lines.len(), 5);
        assert_eq!(lines[0], "{\"line\": 2, \"id\": 0, \"ok\": true}");
        assert!(lines[2].contains("\"reject\": \"duplicate_id\""));
        assert!(lines[3].contains("\"ok\": false") && lines[3].contains("\"error\""));
    }

    #[test]
    fn specs_without_arrival_use_the_stream_clock() {
        let trace = "\
{\"id\": 0, \"arrival_ms\": 10, \"flows\": [[0, 1, 1000000]]}
{\"id\": 1, \"flows\": [[1, 0, 1000000]]}
";
        let mut d = daemon();
        let report = run_to_completion(&mut d, Cursor::new(trace), None).unwrap();
        assert_eq!(report.accepted, 2);
        let mut arrivals: Vec<_> = d
            .completions()
            .iter()
            .map(|c| (c.outcome.coflow, c.outcome.start))
            .collect();
        arrivals.sort();
        // Coflow 1 carried no arrival_ms: it arrived "now", i.e. at the
        // 10 ms the stream clock had reached.
        assert_eq!(arrivals[0].1, Time::from_millis(10));
        assert_eq!(arrivals[1].1, Time::from_millis(10));
    }

    #[test]
    fn tcp_round_trip() {
        use std::io::{BufRead, BufReader, Write};
        use std::net::TcpStream;

        // Bind first: the address is live before any client connects, so
        // there is nothing to retry and nothing to sleep on.
        let server = TcpServer::bind("127.0.0.1:0").unwrap();
        let addr = server.local_addr().unwrap();
        let handle = std::thread::spawn(move || {
            let mut d = daemon();
            let report = server
                .serve_one(&mut d, IngestMode::Sequential)
                .unwrap()
                .expect("a client, not a shutdown");
            (report, d.telemetry().completed)
        });
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .write_all(b"{\"id\": 7, \"arrival_ms\": 1, \"flows\": [[0, 1, 1000000]]}\n")
            .unwrap();
        stream.shutdown(std::net::Shutdown::Write).unwrap();
        let mut lines = Vec::new();
        for l in BufReader::new(stream).lines() {
            lines.push(l.unwrap());
        }
        let (report, completed) = handle.join().unwrap();
        assert_eq!(report.accepted, 1);
        assert_eq!(completed, 1);
        assert_eq!(lines[0], "{\"line\": 1, \"id\": 7, \"ok\": true}");
        assert!(lines[1].contains("\"completed\": 1"), "final status line");
    }

    #[test]
    fn pipelined_tcp_round_trip_matches_the_protocol() {
        use std::io::{BufRead, BufReader, Write};
        use std::net::TcpStream;

        let server = TcpServer::bind("127.0.0.1:0").unwrap();
        let addr = server.local_addr().unwrap();
        let mode = IngestMode::Pipelined(PipelineConfig::default());
        let handle = std::thread::spawn(move || {
            let mut d = daemon();
            let report = server
                .serve_one(&mut d, mode)
                .unwrap()
                .expect("a client, not a shutdown");
            (report, d.telemetry().completed)
        });
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .write_all(
                b"{\"id\": 0, \"arrival_ms\": 0, \"flows\": [[0, 1, 1000000]]}\n\
                  {\"id\": 1, \"arrival_ms\": 2, \"flows\": [[1, 2, 500000]]}\n\
                  broken line\n",
            )
            .unwrap();
        stream.shutdown(std::net::Shutdown::Write).unwrap();
        let lines: Vec<String> = BufReader::new(stream).lines().map(|l| l.unwrap()).collect();
        let (report, completed) = handle.join().unwrap();
        assert_eq!(report.accepted, 2);
        assert_eq!(report.parse_errors, 1);
        assert_eq!(completed, 2);
        assert_eq!(lines.len(), 4, "three acks in line order plus status");
        assert_eq!(lines[0], "{\"line\": 1, \"id\": 0, \"ok\": true}");
        assert_eq!(lines[1], "{\"line\": 2, \"id\": 1, \"ok\": true}");
        assert!(lines[2].contains("\"error\""));
        assert!(lines[3].contains("\"completed\": 2"), "final status line");
    }

    #[test]
    fn shutdown_wakes_the_accept_loop_without_a_client() {
        let server = TcpServer::bind("127.0.0.1:0").unwrap();
        let handle = server.shutdown_handle().unwrap();
        let join = std::thread::spawn(move || {
            let mut d = daemon();
            server.serve(&mut d, IngestMode::Sequential).unwrap()
        });
        // No client ever connects; the handle alone must unblock accept.
        handle.shutdown();
        let total = join.join().unwrap();
        assert_eq!(total, ServeReport::default(), "no connections served");
    }
}
