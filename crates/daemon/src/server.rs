//! Arrival ingestion: drive a [`Daemon`] from a JSONL stream.
//!
//! The service reads one [`crate::jsonl::ArrivalSpec`] per line from any
//! `BufRead` — a file, stdin, or a TCP connection — and acknowledges
//! each line with a one-line JSON verdict (`ok`, `reject` + reason, or
//! `error` for unparseable input). Lines are the clock: a line carrying
//! `arrival_ms` first advances the daemon's virtual clock to that
//! instant (settling circuits and retrying faulted flows on the way),
//! so a trace file replays in arrival order exactly as a live feed
//! would. EOF triggers a graceful drain — the daemon runs until every
//! admitted Coflow completes, then reports.
//!
//! [`serve_tcp`] wraps the same loop around one TCP connection at a
//! time: netcat a trace at the daemon and read the acks back.

use crate::jsonl::parse_line;
use crate::service::Daemon;
use ocs_model::Time;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, ToSocketAddrs};

/// What a [`run_to_completion`] pass saw.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServeReport {
    /// Non-blank input lines consumed.
    pub lines: u64,
    /// Lines that failed to parse.
    pub parse_errors: u64,
    /// Coflows admitted.
    pub accepted: u64,
    /// Submissions refused by admission control.
    pub rejected: u64,
    /// Scheduling events processed, including the graceful drain.
    pub events: u64,
}

fn ack(out: &mut Option<&mut dyn Write>, line: &str) -> std::io::Result<()> {
    if let Some(w) = out.as_deref_mut() {
        writeln!(w, "{line}")?;
        w.flush()?;
    }
    Ok(())
}

/// Feed every line of `input` to `daemon`, ack each on `ack_out`, then
/// drain gracefully. Blank lines and `#` comments are skipped. Returns
/// the pass's [`ServeReport`]; the daemon retains all telemetry and
/// completions for status dumps afterwards.
pub fn run_to_completion(
    daemon: &mut Daemon,
    input: impl BufRead,
    mut ack_out: Option<&mut dyn Write>,
) -> std::io::Result<ServeReport> {
    let mut report = ServeReport::default();
    for (lineno, line) in input.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        report.lines += 1;
        let spec = match parse_line(trimmed) {
            Ok(spec) => spec,
            Err(e) => {
                report.parse_errors += 1;
                ack(
                    &mut ack_out,
                    &format!(
                        "{{\"line\": {}, \"ok\": false, \"error\": \"{}\"}}",
                        lineno + 1,
                        e.to_string().replace('\\', "\\\\").replace('"', "\\\""),
                    ),
                )?;
                continue;
            }
        };
        // The trace clock: catch the daemon up to this arrival so the
        // submission lands in the present, not the schedule's past.
        if let Some(ms) = spec.arrival_ms {
            let t = Time::from_millis(ms);
            if t > daemon.now() {
                report.events += daemon.advance_to(t);
            }
        }
        match daemon.submit_spec(&spec) {
            Ok(()) => {
                report.accepted += 1;
                ack(
                    &mut ack_out,
                    &format!(
                        "{{\"line\": {}, \"id\": {}, \"ok\": true}}",
                        lineno + 1,
                        spec.id
                    ),
                )?;
            }
            Err(reason) => {
                report.rejected += 1;
                ack(
                    &mut ack_out,
                    &format!(
                        "{{\"line\": {}, \"id\": {}, \"ok\": false, \"reject\": \"{}\"}}",
                        lineno + 1,
                        spec.id,
                        reason
                    ),
                )?;
            }
        }
    }
    report.events += daemon.drain();
    Ok(report)
}

/// Serve one TCP connection: read JSONL arrivals from the peer, write
/// per-line acks back, drain on EOF, then send the final status JSON as
/// the last line. Accepts exactly one connection (the daemon's virtual
/// clock is single-stream by construction); returns the pass report.
pub fn serve_tcp(daemon: &mut Daemon, addr: impl ToSocketAddrs) -> std::io::Result<ServeReport> {
    let listener = TcpListener::bind(addr)?;
    let (stream, _peer) = listener.accept()?;
    let reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;
    let report = run_to_completion(daemon, reader, Some(&mut writer))?;
    writeln!(writer, "{}", daemon.status_json())?;
    writer.flush()?;
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::DaemonConfig;
    use ocs_model::{Bandwidth, Dur, Fabric};
    use std::io::Cursor;

    fn daemon() -> Daemon {
        Daemon::new(&DaemonConfig {
            fabric: Fabric::new(4, Bandwidth::GBPS, Dur::from_micros(20)),
            ..DaemonConfig::default()
        })
    }

    #[test]
    fn stream_replay_acks_and_drains() {
        let trace = "\
# demo trace
{\"id\": 0, \"arrival_ms\": 0, \"flows\": [[0, 1, 1000000]]}

{\"id\": 1, \"arrival_ms\": 5, \"flows\": [[1, 2, 2000000], [2, 3, 500000]]}
{\"id\": 1, \"arrival_ms\": 6, \"flows\": [[0, 1, 1]]}
not json at all
{\"id\": 2, \"arrival_ms\": 9, \"flows\": [[3, 0, 750000]]}
";
        let mut d = daemon();
        let mut acks = Vec::new();
        let report = run_to_completion(
            &mut d,
            Cursor::new(trace),
            Some(&mut acks as &mut dyn std::io::Write),
        )
        .unwrap();
        assert_eq!(report.lines, 5);
        assert_eq!(report.parse_errors, 1);
        assert_eq!(report.accepted, 3);
        assert_eq!(report.rejected, 1, "duplicate id 1 is refused");
        assert!(d.is_idle());
        assert_eq!(d.telemetry().completed, 3);

        let acks = String::from_utf8(acks).unwrap();
        let lines: Vec<&str> = acks.lines().collect();
        assert_eq!(lines.len(), 5);
        assert_eq!(lines[0], "{\"line\": 2, \"id\": 0, \"ok\": true}");
        assert!(lines[2].contains("\"reject\": \"duplicate_id\""));
        assert!(lines[3].contains("\"ok\": false") && lines[3].contains("\"error\""));
    }

    #[test]
    fn specs_without_arrival_use_the_stream_clock() {
        let trace = "\
{\"id\": 0, \"arrival_ms\": 10, \"flows\": [[0, 1, 1000000]]}
{\"id\": 1, \"flows\": [[1, 0, 1000000]]}
";
        let mut d = daemon();
        let report = run_to_completion(&mut d, Cursor::new(trace), None).unwrap();
        assert_eq!(report.accepted, 2);
        let mut arrivals: Vec<_> = d
            .completions()
            .iter()
            .map(|c| (c.outcome.coflow, c.outcome.start))
            .collect();
        arrivals.sort();
        // Coflow 1 carried no arrival_ms: it arrived "now", i.e. at the
        // 10 ms the stream clock had reached.
        assert_eq!(arrivals[0].1, Time::from_millis(10));
        assert_eq!(arrivals[1].1, Time::from_millis(10));
    }

    #[test]
    fn tcp_round_trip() {
        use std::io::{BufRead, BufReader, Write};
        use std::net::TcpStream;

        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        drop(listener); // serve_tcp re-binds; grab a free port first
        let server = std::thread::spawn(move || {
            let mut d = daemon();
            let report = serve_tcp(&mut d, addr).unwrap();
            (report, d.telemetry().completed)
        });
        // Give the listener a moment; retry connects until it is up.
        let mut stream = {
            let mut attempts = 0;
            loop {
                match TcpStream::connect(addr) {
                    Ok(s) => break s,
                    Err(e) => {
                        attempts += 1;
                        assert!(attempts < 400, "could not connect to test daemon: {e}");
                        std::thread::sleep(std::time::Duration::from_millis(5));
                    }
                }
            }
        };
        stream
            .write_all(b"{\"id\": 7, \"arrival_ms\": 1, \"flows\": [[0, 1, 1000000]]}\n")
            .unwrap();
        stream.shutdown(std::net::Shutdown::Write).unwrap();
        let mut lines = Vec::new();
        for l in BufReader::new(stream).lines() {
            lines.push(l.unwrap());
        }
        let (report, completed) = server.join().unwrap();
        assert_eq!(report.accepted, 1);
        assert_eq!(completed, 1);
        assert_eq!(lines[0], "{\"line\": 1, \"id\": 7, \"ok\": true}");
        assert!(lines[1].contains("\"completed\": 1"), "final status line");
    }
}
