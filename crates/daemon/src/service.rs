//! The daemon core: admission control, the scheduling backend, fault
//! injection and telemetry, behind one [`Daemon`] value.
//!
//! The daemon owns a [`SchedulingBackend`] — Sunflow by default, any
//! [`BackendKind`] on request — and advances it along a virtual clock:
//! callers [`Daemon::submit`] Coflows, [`Daemon::advance_to`] a deadline
//! (settling circuits, replanning, retrying faulted flows), and read
//! results through [`Daemon::completions`], [`Daemon::status_json`] and
//! [`Daemon::prometheus`]. Admission is bounded — a queue-depth cap and
//! an outstanding-transmit-demand cap — and every rejection carries a
//! [`RejectReason`] so clients can distinguish back-pressure from bad
//! input. [`Daemon::checkpoint`] / [`Daemon::restore`] capture the whole
//! service as its construction config plus the command log; replaying
//! the log against a fresh daemon reproduces the state exactly (every
//! backend and the fault injector are deterministic), so checkpoints
//! work for every scheduler without backend-internal snapshots.

use crate::faults::{FaultConfig, FaultInjector, FaultStats};
use crate::jsonl::ArrivalSpec;
use ocs_metrics::{Histogram, PromRenderer};
use ocs_model::{Coflow, Dur, Fabric, Time};
use ocs_sim::{BackendKind, Completion, OnlineConfig, ReplayStats, SchedulingBackend, SubmitError};
use std::fmt;
use std::str::FromStr;
use sunflow_core::{FirstComeFirstServed, LongestFirst, PriorityPolicy, ShortestFirst};

/// Which inter-Coflow priority policy the daemon schedules with.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum PolicyKind {
    /// Shortest-remaining-bottleneck first (the paper's default).
    #[default]
    ShortestFirst,
    /// Longest-bottleneck first (worst-case foil).
    LongestFirst,
    /// Arrival order.
    FirstComeFirstServed,
}

impl PolicyKind {
    /// All kinds, for help text.
    pub const ALL: [PolicyKind; 3] = [
        PolicyKind::ShortestFirst,
        PolicyKind::LongestFirst,
        PolicyKind::FirstComeFirstServed,
    ];

    /// The canonical CLI spelling.
    pub fn name(self) -> &'static str {
        match self {
            PolicyKind::ShortestFirst => "shortest",
            PolicyKind::LongestFirst => "longest",
            PolicyKind::FirstComeFirstServed => "fcfs",
        }
    }

    /// Instantiate the policy.
    pub fn build(self) -> Box<dyn PriorityPolicy> {
        match self {
            PolicyKind::ShortestFirst => Box::new(ShortestFirst),
            PolicyKind::LongestFirst => Box::new(LongestFirst),
            PolicyKind::FirstComeFirstServed => Box::new(FirstComeFirstServed),
        }
    }
}

impl FromStr for PolicyKind {
    type Err = String;
    fn from_str(s: &str) -> Result<PolicyKind, String> {
        match s.to_ascii_lowercase().as_str() {
            "shortest" | "shortest-first" | "sjf" => Ok(PolicyKind::ShortestFirst),
            "longest" | "longest-first" => Ok(PolicyKind::LongestFirst),
            "fcfs" | "first-come-first-served" | "fifo" => Ok(PolicyKind::FirstComeFirstServed),
            other => Err(format!(
                "unknown policy {other:?}; expected one of shortest, longest, fcfs"
            )),
        }
    }
}

/// Why the daemon refused a submission.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RejectReason {
    /// The admission queue (queued + in-service Coflows) is at its cap.
    QueueFull,
    /// Admitting would push outstanding transmit demand past its cap.
    DemandCap,
    /// A Coflow with this id was already submitted.
    DuplicateId,
    /// The arrival time is earlier than the daemon clock.
    ArrivalInPast,
    /// A flow references a port outside the fabric.
    ExceedsFabric,
    /// A flow crosses two port groups of a partitioned
    /// (`portgroups:<G>`) backend.
    CrossesPortGroups,
    /// The ingest pipeline's bounded admission channel was full — the
    /// arrival was refused *before* reaching admission control. Emitted
    /// by the pipelined front end (`crate::ingest`), never by
    /// [`Daemon::submit`] itself.
    Backpressure,
}

impl RejectReason {
    /// All reasons, in counter order.
    pub const ALL: [RejectReason; 7] = [
        RejectReason::QueueFull,
        RejectReason::DemandCap,
        RejectReason::DuplicateId,
        RejectReason::ArrivalInPast,
        RejectReason::ExceedsFabric,
        RejectReason::CrossesPortGroups,
        RejectReason::Backpressure,
    ];

    /// Stable snake_case label (used in JSON and Prometheus output).
    pub fn label(self) -> &'static str {
        match self {
            RejectReason::QueueFull => "queue_full",
            RejectReason::DemandCap => "demand_cap",
            RejectReason::DuplicateId => "duplicate_id",
            RejectReason::ArrivalInPast => "arrival_in_past",
            RejectReason::ExceedsFabric => "exceeds_fabric",
            RejectReason::CrossesPortGroups => "crosses_port_groups",
            RejectReason::Backpressure => "backpressure",
        }
    }

    pub(crate) fn index(self) -> usize {
        RejectReason::ALL.iter().position(|r| *r == self).unwrap()
    }
}

impl fmt::Display for RejectReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Back-pressure limits for [`Daemon::submit`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AdmissionConfig {
    /// Maximum Coflows queued or in service at once.
    pub max_queue_depth: usize,
    /// Maximum total unserved transmit demand (sum of per-flow
    /// processing times) across admitted Coflows.
    pub max_outstanding: Dur,
}

impl Default for AdmissionConfig {
    fn default() -> AdmissionConfig {
        AdmissionConfig {
            max_queue_depth: 4_096,
            max_outstanding: Dur::MAX,
        }
    }
}

/// Everything needed to build a [`Daemon`].
#[derive(Clone, Debug)]
pub struct DaemonConfig {
    /// The optical fabric served.
    pub fabric: Fabric,
    /// Which scheduler runs the fabric (Sunflow, a circuit baseline, or
    /// a packet-switched fluid scheduler).
    pub backend: BackendKind,
    /// Engine settings: active-circuit policy, starvation guard (used by
    /// the Sunflow backend; the others ignore them).
    pub online: OnlineConfig,
    /// Inter-Coflow priority policy.
    pub policy: PolicyKind,
    /// Admission limits.
    pub admission: AdmissionConfig,
    /// Fault-injection settings (all-zero = fault-free).
    pub faults: FaultConfig,
}

impl Default for DaemonConfig {
    fn default() -> DaemonConfig {
        DaemonConfig {
            fabric: Fabric::paper_default(),
            backend: BackendKind::Sunflow,
            online: OnlineConfig::default(),
            policy: PolicyKind::default(),
            admission: AdmissionConfig::default(),
            faults: FaultConfig::default(),
        }
    }
}

/// Service counters and latency histograms (sample unit: picoseconds of
/// virtual time, except [`Telemetry::admit_latency`] which is wall-clock
/// nanoseconds).
#[derive(Clone, Debug, Default)]
pub struct Telemetry {
    /// Coflow completion time (finish − arrival) samples.
    pub cct: Histogram,
    /// Queue latency (first circuit transmit − arrival) samples.
    pub queue_latency: Histogram,
    /// Wall-clock nanoseconds from an arrival entering the ingest
    /// pipeline to its submission into the scheduling backend
    /// (admission-to-schedule latency). Recorded only by the pipelined
    /// front end; empty on the synchronous path.
    pub admit_latency: Histogram,
    /// Coflows admitted.
    pub admitted: u64,
    /// Coflows completed.
    pub completed: u64,
    /// Rejections, indexed like [`RejectReason::ALL`].
    pub rejected: [u64; 7],
    /// Total bytes across admitted Coflows.
    pub bytes_admitted: u64,
    /// Total transmit demand admitted (sum of per-flow processing times).
    pub demand_admitted: Dur,
    /// Circuit establishments across completed Coflows.
    pub circuit_setups: u64,
}

impl Telemetry {
    /// Rejections summed over every reason.
    pub fn rejected_total(&self) -> u64 {
        self.rejected.iter().sum()
    }
}

/// One externally-driven daemon command, as recorded in the command log
/// that [`DaemonCheckpoint`] replays on restore.
#[derive(Clone, Debug)]
enum Command {
    /// A submission attempt (admission may still reject it — rejections
    /// replay identically, keeping the telemetry counters exact).
    Submit(Coflow),
    /// Clock advance to a deadline.
    AdvanceTo(Time),
    /// Graceful drain to idle.
    Drain,
    /// Schedule-history compaction.
    Compact,
}

/// A full service capture for checkpoint/resume; see
/// [`Daemon::checkpoint`]. Plain data: the construction config plus the
/// command log — restore rebuilds the daemon and replays the log.
#[derive(Clone, Debug)]
pub struct DaemonCheckpoint {
    config: DaemonConfig,
    log: Vec<Command>,
}

/// The online Coflow scheduling service.
pub struct Daemon {
    config: DaemonConfig,
    backend: Box<dyn SchedulingBackend>,
    injector: FaultInjector,
    telemetry: Telemetry,
    /// Every completion since construction, in completion order.
    completions: Vec<Completion>,
    /// Every externally-driven command since construction; the
    /// checkpoint's replay script.
    log: Vec<Command>,
}

impl Daemon {
    /// Build an idle daemon at `t = 0`.
    pub fn new(config: &DaemonConfig) -> Daemon {
        Daemon {
            backend: config
                .backend
                .build(&config.fabric, &config.online, config.policy.build()),
            injector: FaultInjector::new(config.faults, config.fabric.delta()),
            telemetry: Telemetry::default(),
            completions: Vec::new(),
            log: Vec::new(),
            config: config.clone(),
        }
    }

    /// The daemon's virtual clock.
    pub fn now(&self) -> Time {
        self.backend.now()
    }

    /// True when no admitted Coflow has unserved demand.
    pub fn is_idle(&self) -> bool {
        self.backend.is_idle()
    }

    /// Which scheduling backend this daemon runs.
    pub fn backend(&self) -> BackendKind {
        self.config.backend
    }

    /// Service counters and histograms.
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Fault-injection counters.
    pub fn fault_stats(&self) -> FaultStats {
        self.injector.stats()
    }

    /// Scheduler-side replay counters (all zero for backends without a
    /// rescheduling loop).
    pub fn stats(&self) -> ReplayStats {
        self.backend.stats().unwrap_or_default()
    }

    /// The split policy's metric label when this daemon runs the hybrid
    /// fabric; `None` for every single-fabric backend.
    pub fn split_label(&self) -> Option<&'static str> {
        match self.config.backend {
            BackendKind::Hybrid { split, .. } => Some(split.name()),
            _ => None,
        }
    }

    /// Every completion so far, in completion order.
    pub fn completions(&self) -> &[Completion] {
        &self.completions
    }

    /// The configured priority policy.
    pub fn policy(&self) -> PolicyKind {
        self.config.policy
    }

    /// Total transmit demand of `coflow` on this fabric.
    fn coflow_demand(&self, coflow: &Coflow) -> Dur {
        coflow
            .flows()
            .iter()
            .map(|f| self.config.fabric.processing_time(f.bytes))
            .sum()
    }

    fn reject(&mut self, reason: RejectReason) -> Result<(), RejectReason> {
        self.telemetry.rejected[reason.index()] += 1;
        Err(reason)
    }

    /// Admit `coflow` or reject it with a reason. Admission checks run
    /// before the backend sees the Coflow, so a rejected submission
    /// leaves the schedule untouched.
    pub fn submit(&mut self, coflow: Coflow) -> Result<(), RejectReason> {
        self.log.push(Command::Submit(coflow.clone()));
        self.do_submit(coflow)
    }

    fn do_submit(&mut self, coflow: Coflow) -> Result<(), RejectReason> {
        let depth = self.backend.active_coflows() + self.backend.queued_arrivals();
        if depth >= self.config.admission.max_queue_depth {
            return self.reject(RejectReason::QueueFull);
        }
        let demand = self.coflow_demand(&coflow);
        if self
            .backend
            .outstanding_demand()
            .as_ps()
            .checked_add(demand.as_ps())
            .is_none_or(|total| total > self.config.admission.max_outstanding.as_ps())
        {
            return self.reject(RejectReason::DemandCap);
        }
        let bytes = coflow.total_bytes();
        match self.backend.submit(coflow) {
            Ok(()) => {
                self.telemetry.admitted += 1;
                self.telemetry.bytes_admitted += bytes;
                self.telemetry.demand_admitted += demand;
                Ok(())
            }
            Err(SubmitError::DuplicateId(_)) => self.reject(RejectReason::DuplicateId),
            Err(SubmitError::ArrivalInPast { .. }) => self.reject(RejectReason::ArrivalInPast),
            Err(SubmitError::ExceedsFabric { .. }) => self.reject(RejectReason::ExceedsFabric),
            Err(SubmitError::CrossesPortGroups { .. }) => {
                self.reject(RejectReason::CrossesPortGroups)
            }
        }
    }

    /// Record `n` arrivals refused by the ingest pipeline's bounded
    /// admission channel. Ingest-layer telemetry only: the refused
    /// arrivals never reached [`Daemon::submit`], so they are not in the
    /// command log and a restored checkpoint will not replay them.
    pub fn note_backpressure(&mut self, n: u64) {
        self.telemetry.rejected[RejectReason::Backpressure.index()] += n;
    }

    /// Record one admission-to-schedule latency sample (wall-clock
    /// nanoseconds from ingest to backend submission). Ingest-layer
    /// telemetry only, outside the command log.
    pub fn record_admit_latency_ns(&mut self, ns: u64) {
        self.telemetry.admit_latency.record(ns);
    }

    /// Admit a wire-format arrival. A spec without `arrival_ms` arrives
    /// at the daemon's current clock.
    pub fn submit_spec(&mut self, spec: &ArrivalSpec) -> Result<(), RejectReason> {
        self.submit(spec.to_coflow(self.now()))
    }

    fn absorb_completions(&mut self) {
        for c in self.backend.drain_completions() {
            self.telemetry.completed += 1;
            self.telemetry.circuit_setups += c.outcome.circuit_setups;
            self.telemetry
                .cct
                .record(c.outcome.finish.since(c.outcome.start).as_ps());
            if let Some(first) = c.first_service {
                self.telemetry
                    .queue_latency
                    .record(first.since(c.outcome.start).as_ps());
            }
            self.completions.push(c);
        }
    }

    /// Advance the virtual clock to `deadline`, settling circuits,
    /// replanning and retrying faulted flows along the way. Returns the
    /// number of scheduling events processed.
    pub fn advance_to(&mut self, deadline: Time) -> u64 {
        self.log.push(Command::AdvanceTo(deadline));
        self.do_advance_to(deadline)
    }

    fn do_advance_to(&mut self, deadline: Time) -> u64 {
        let processed = self.backend.advance_to(deadline, &mut self.injector);
        self.absorb_completions();
        processed
    }

    /// Graceful drain: run until every admitted Coflow has completed.
    pub fn drain(&mut self) -> u64 {
        self.log.push(Command::Drain);
        self.do_drain()
    }

    fn do_drain(&mut self) -> u64 {
        let processed = self.backend.advance_to(Time::MAX, &mut self.injector);
        self.absorb_completions();
        debug_assert!(self.backend.is_idle());
        processed
    }

    /// Forget schedule history before the current clock; returns freed
    /// reservation-record count. Call periodically on long runs.
    pub fn compact(&mut self) -> usize {
        self.log.push(Command::Compact);
        self.backend.compact_history()
    }

    /// Fraction of total port-time spent transmitting admitted demand,
    /// `served / (ports × elapsed)`. Zero before the clock first moves.
    pub fn utilization(&self) -> f64 {
        let elapsed = self.now().as_secs_f64();
        if elapsed <= 0.0 {
            return 0.0;
        }
        let served = self
            .telemetry
            .demand_admitted
            .saturating_sub(self.backend.outstanding_demand());
        served.as_secs_f64() / (self.config.fabric.ports() as f64 * elapsed)
    }

    /// One core's backend telemetry (`None` for single-switch backends
    /// and out-of-range cores).
    pub fn backend_core_status(&self, core: usize) -> Option<ocs_sim::CoreStatus> {
        self.backend.core_status(core)
    }

    /// Per-core status rows of a multi-core backend: empty for
    /// single-switch backends (`K = 1` and no core seam).
    fn core_rows(&self) -> Vec<(usize, ocs_sim::CoreStatus)> {
        if self.backend.cores() <= 1 {
            return Vec::new();
        }
        (0..self.backend.cores())
            .filter_map(|c| Some((c, self.backend.core_status(c)?)))
            .collect()
    }

    /// One core's utilization: served transmit time on that core over
    /// the core's total port-time.
    fn core_utilization(&self, status: &ocs_sim::CoreStatus) -> f64 {
        let elapsed = self.now().as_secs_f64();
        if elapsed <= 0.0 {
            return 0.0;
        }
        let served = status
            .demand_admitted
            .saturating_sub(status.outstanding_demand);
        served.as_secs_f64() / (self.config.fabric.ports() as f64 * elapsed)
    }

    /// Capture the full service state. The checkpoint is plain data —
    /// the construction config plus the command log: clone it, keep it,
    /// and [`Daemon::restore`] later — the resumed daemon continues
    /// exactly as this one would have. Works for every backend; nothing
    /// scheduler-internal is captured.
    pub fn checkpoint(&self) -> DaemonCheckpoint {
        DaemonCheckpoint {
            config: self.config.clone(),
            log: self.log.clone(),
        }
    }

    /// Rebuild a daemon from a [`DaemonCheckpoint`] by replaying its
    /// command log against a fresh service. Every backend and the fault
    /// injector are deterministic, so the replayed daemon's schedule,
    /// telemetry and fault streaks match the checkpointed one's exactly.
    pub fn restore(ckpt: &DaemonCheckpoint) -> Daemon {
        let mut d = Daemon::new(&ckpt.config);
        for cmd in &ckpt.log {
            match cmd {
                Command::Submit(c) => {
                    let _ = d.do_submit(c.clone());
                }
                Command::AdvanceTo(t) => {
                    d.do_advance_to(*t);
                }
                Command::Drain => {
                    d.do_drain();
                }
                Command::Compact => {
                    d.backend.compact_history();
                }
            }
        }
        d.log = ckpt.log.clone();
        d
    }

    /// One-line JSON status dump (counters, gauges, latency summaries).
    pub fn status_json(&self) -> String {
        let t = &self.telemetry;
        let f = self.fault_stats();
        let s = self.stats();
        let mut rejected = String::from("{");
        for (i, reason) in RejectReason::ALL.iter().enumerate() {
            if i > 0 {
                rejected.push_str(", ");
            }
            rejected.push_str(&format!("\"{}\": {}", reason.label(), t.rejected[i]));
        }
        rejected.push('}');
        // Multi-core backends report a per-core breakdown; single-switch
        // backends omit the key entirely.
        let mut cores = String::new();
        let rows = self.core_rows();
        if !rows.is_empty() {
            cores.push_str("\"cores\": [");
            for (i, (core, st)) in rows.iter().enumerate() {
                if i > 0 {
                    cores.push_str(", ");
                }
                cores.push_str(&format!(
                    concat!(
                        "{{\"core\": {}, \"active_coflows\": {}, ",
                        "\"outstanding_demand_secs\": {:.6}, ",
                        "\"utilization\": {:.6}, \"reservations_made\": {}}}"
                    ),
                    core,
                    st.active_coflows,
                    st.outstanding_demand.as_secs_f64(),
                    self.core_utilization(st),
                    st.reservations_made,
                ));
            }
            cores.push_str("], ");
        }
        // The hybrid backend reports its demand-routing counters;
        // single-fabric backends omit the key entirely.
        let mut split = String::new();
        if let Some(policy) = self.split_label() {
            split = format!(
                concat!(
                    "\"split\": {{\"policy\": \"{}\", \"evals\": {}, ",
                    "\"subflows_to_packet\": {}, \"bytes_to_packet\": {}}}, "
                ),
                policy, s.split_evals, s.subflows_split, s.bytes_to_packet,
            );
        }
        format!(
            concat!(
                "{{\"now_secs\": {:.6}, \"backend\": \"{}\", \"switch_model\": \"{}\", ",
                "\"policy\": \"{}\", \"idle\": {}, ",
                "\"active_coflows\": {}, \"queued_arrivals\": {}, \"deferred_flows\": {}, ",
                "\"admitted\": {}, \"completed\": {}, \"rejected\": {}, ",
                "\"bytes_admitted\": {}, \"outstanding_demand_secs\": {:.6}, ",
                "\"utilization\": {:.6}, \"circuit_setups\": {}, \"guard_windows\": {}, ",
                "\"resched_events\": {}, \"reservations_made\": {}, ",
                "\"faults\": {{\"setup_failures\": {}, \"port_flaps\": {}, ",
                "\"delta_inflations\": {}, \"retries\": {}, \"recoveries\": {}, ",
                "\"max_attempts\": {}, \"backoff_total_secs\": {:.6}, \"flows_in_backoff\": {}}}, ",
                "{}{}\"cct_ps\": {}, \"queue_latency_ps\": {}, \"admit_latency_ns\": {}}}"
            ),
            self.now().as_secs_f64(),
            self.backend.name(),
            self.backend.switch_model(),
            self.config.policy.name(),
            self.is_idle(),
            self.backend.active_coflows(),
            self.backend.queued_arrivals(),
            self.backend.deferred_flows(),
            t.admitted,
            t.completed,
            rejected,
            t.bytes_admitted,
            self.backend.outstanding_demand().as_secs_f64(),
            self.utilization(),
            t.circuit_setups,
            self.backend.guard_windows(),
            s.events,
            s.reservations_made,
            f.setup_failures,
            f.port_flaps,
            f.delta_inflations,
            f.retries,
            f.recoveries,
            f.max_attempts,
            f.backoff_total.as_secs_f64(),
            self.injector.flows_in_backoff(),
            cores,
            split,
            t.cct.to_json(),
            t.queue_latency.to_json(),
            t.admit_latency.to_json(),
        )
    }

    /// Prometheus text exposition (format 0.0.4) of the same state.
    /// Every series carries a `backend` label with the canonical
    /// scheduler name, so dashboards can overlay daemons running
    /// different schedulers.
    pub fn prometheus(&self) -> String {
        const PS: f64 = 1e-12;
        let t = &self.telemetry;
        let f = self.fault_stats();
        let s = self.stats();
        let b = self.backend.name();
        let by_backend = [("backend", b)];
        let mut p = PromRenderer::new();
        p.counter(
            "ocs_daemon_admitted_total",
            "Coflows admitted by the daemon",
            &by_backend,
            t.admitted,
        );
        p.counter(
            "ocs_daemon_completed_total",
            "Coflows fully served",
            &by_backend,
            t.completed,
        );
        for (i, reason) in RejectReason::ALL.iter().enumerate() {
            p.counter(
                "ocs_daemon_rejected_total",
                "Submissions refused, by reason",
                &[("backend", b), ("reason", reason.label())],
                t.rejected[i],
            );
        }
        p.gauge(
            "ocs_daemon_active_coflows",
            "Coflows currently in service",
            &by_backend,
            self.backend.active_coflows() as f64,
        );
        p.gauge(
            "ocs_daemon_queued_arrivals",
            "Admitted Coflows not yet arrived on the virtual clock",
            &by_backend,
            self.backend.queued_arrivals() as f64,
        );
        p.gauge(
            "ocs_daemon_deferred_flows",
            "Flows waiting out a fault-retry backoff",
            &by_backend,
            self.backend.deferred_flows() as f64,
        );
        p.gauge(
            "ocs_daemon_outstanding_demand_seconds",
            "Unserved transmit demand across admitted Coflows",
            &by_backend,
            self.backend.outstanding_demand().as_secs_f64(),
        );
        p.gauge(
            "ocs_daemon_circuit_utilization",
            "Served transmit time over total port-time",
            &by_backend,
            self.utilization(),
        );
        p.counter(
            "ocs_daemon_circuit_setups_total",
            "Circuit establishments across completed Coflows",
            &by_backend,
            t.circuit_setups,
        );
        p.counter(
            "ocs_daemon_guard_windows_total",
            "Starvation-guard shared windows elapsed",
            &by_backend,
            self.backend.guard_windows(),
        );
        p.counter(
            "ocs_daemon_resched_events_total",
            "Rescheduling events processed",
            &by_backend,
            s.events,
        );
        p.counter(
            "ocs_daemon_reservations_total",
            "Reservations created by the intra-Coflow scheduler",
            &by_backend,
            s.reservations_made,
        );
        // The hybrid backend labels its demand-routing counters with the
        // split policy; single-fabric backends emit no split series.
        if let Some(split) = self.split_label() {
            let by_split = [("backend", b), ("split", split)];
            p.counter(
                "ocs_daemon_split_evals_total",
                "Split candidates evaluated at hybrid admission",
                &by_split,
                s.split_evals,
            );
            p.counter(
                "ocs_daemon_split_subflows_total",
                "Subflows carved off to the packet fabric",
                &by_split,
                s.subflows_split,
            );
            p.counter(
                "ocs_daemon_split_bytes_to_packet_total",
                "Bytes routed to the packet fabric",
                &by_split,
                s.bytes_to_packet,
            );
        }
        // Multi-core backends additionally expose each core as a label
        // dimension; single-switch backends emit no core series.
        for (core, st) in self.core_rows() {
            let core_label = core.to_string();
            let by_core = [("backend", b), ("core", core_label.as_str())];
            p.gauge(
                "ocs_daemon_core_utilization",
                "Served transmit time over port-time, per switch core",
                &by_core,
                self.core_utilization(&st),
            );
            p.gauge(
                "ocs_daemon_core_active_coflows",
                "Coflows with unfinished flows placed on this core",
                &by_core,
                st.active_coflows as f64,
            );
            p.gauge(
                "ocs_daemon_core_outstanding_demand_seconds",
                "Unserved transmit demand placed on this core",
                &by_core,
                st.outstanding_demand.as_secs_f64(),
            );
            p.counter(
                "ocs_daemon_core_reservations_total",
                "Circuit reservations planned on this core's PRT shard",
                &by_core,
                st.reservations_made,
            );
        }
        for (kind, v) in [
            ("setup_failure", f.setup_failures),
            ("port_flap", f.port_flaps),
            ("delta_inflation", f.delta_inflations),
        ] {
            p.counter(
                "ocs_daemon_faults_total",
                "Injected circuit faults, by kind",
                &[("backend", b), ("kind", kind)],
                v,
            );
        }
        p.counter(
            "ocs_daemon_fault_retries_total",
            "Retries scheduled after faults",
            &by_backend,
            f.retries,
        );
        p.counter(
            "ocs_daemon_fault_recoveries_total",
            "Flows that settled fault-free after at least one fault",
            &by_backend,
            f.recoveries,
        );
        p.gauge(
            "ocs_daemon_fault_backoff_seconds",
            "Total backoff imposed across retries",
            &by_backend,
            f.backoff_total.as_secs_f64(),
        );
        p.histogram(
            "ocs_daemon_cct_seconds",
            "Coflow completion time (finish minus arrival)",
            &by_backend,
            &t.cct,
            PS,
        );
        p.histogram(
            "ocs_daemon_queue_latency_seconds",
            "Arrival to first circuit transmit",
            &by_backend,
            &t.queue_latency,
            PS,
        );
        p.histogram(
            "ocs_daemon_admit_latency_seconds",
            "Wall-clock ingest to backend submission (pipelined front end)",
            &by_backend,
            &t.admit_latency,
            1e-9,
        );
        p.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ocs_model::Bandwidth;
    use ocs_sim::simulate_circuit;

    fn small_fabric() -> Fabric {
        Fabric::new(4, Bandwidth::GBPS, Dur::from_micros(20))
    }

    fn workload(n: u64) -> Vec<Coflow> {
        (0..n)
            .map(|id| {
                Coflow::builder(id)
                    .arrival(Time::from_millis(id * 7))
                    .flow(
                        (id % 4) as usize,
                        ((id + 1) % 4) as usize,
                        500_000 + id * 40_000,
                    )
                    .flow(((id + 2) % 4) as usize, ((id + 3) % 4) as usize, 250_000)
                    .build()
            })
            .collect()
    }

    fn config() -> DaemonConfig {
        DaemonConfig {
            fabric: small_fabric(),
            ..DaemonConfig::default()
        }
    }

    #[test]
    fn fault_free_daemon_matches_offline_simulation() {
        let cfg = config();
        let coflows = workload(24);
        let offline = simulate_circuit(
            &coflows,
            &cfg.fabric,
            &cfg.online,
            cfg.policy.build().as_ref(),
        );

        let mut daemon = Daemon::new(&cfg);
        // Feed arrivals just in time, advancing in 5 ms slices.
        let mut pending: Vec<Coflow> = coflows.clone();
        pending.sort_by_key(|c| (c.arrival(), c.id()));
        let mut next = 0;
        let mut t = Time::ZERO;
        while next < pending.len() {
            while next < pending.len() && pending[next].arrival() <= t {
                daemon.submit(pending[next].clone()).unwrap();
                next += 1;
            }
            daemon.advance_to(t);
            t += Dur::from_millis(5);
        }
        daemon.drain();

        let mut got: Vec<_> = daemon
            .completions()
            .iter()
            .map(|c| c.outcome.clone())
            .collect();
        got.sort_by_key(|o| o.coflow);
        let mut want = offline.outcomes.clone();
        want.sort_by_key(|o| o.coflow);
        assert_eq!(got, want, "daemon CCTs must match offline simulate_circuit");
        assert_eq!(daemon.telemetry().completed, 24);
        assert_eq!(daemon.fault_stats(), FaultStats::default());
    }

    #[test]
    fn faulted_daemon_completes_all_admitted_coflows() {
        let mut cfg = config();
        cfg.faults = FaultConfig {
            seed: 42,
            setup_failure_per_mille: 150,
            port_flap_per_mille: 100,
            delta_inflation_per_mille: 50,
            ..FaultConfig::default()
        };
        let coflows = workload(24);
        let mut daemon = Daemon::new(&cfg);
        for c in &coflows {
            daemon.submit(c.clone()).unwrap();
        }
        daemon.drain();

        assert!(daemon.is_idle(), "graceful drain leaves no demand behind");
        assert_eq!(daemon.telemetry().completed, 24, "no lost Coflows");
        let f = daemon.fault_stats();
        assert!(f.retries > 0, "fault rates this high must trigger retries");
        assert!(f.backoff_total > Dur::ZERO, "retries impose backoff");
        assert!(
            f.setup_failures + f.port_flaps + f.delta_inflations > 0,
            "at least one concrete fault kind fired"
        );

        // Faults only delay: every per-Coflow finish is >= its fault-free
        // counterpart.
        let clean = simulate_circuit(
            &coflows,
            &cfg.fabric,
            &cfg.online,
            cfg.policy.build().as_ref(),
        );
        let mut faulted: Vec<_> = daemon.completions().to_vec();
        faulted.sort_by_key(|c| c.outcome.coflow);
        let mut total_delay = Dur::ZERO;
        for (f, c) in faulted.iter().zip(clean.outcomes.iter()) {
            assert_eq!(f.outcome.coflow, c.coflow);
            assert!(f.outcome.finish >= c.start, "sanity");
            total_delay += f.outcome.finish.saturating_since(c.finish);
        }
        assert!(total_delay > Dur::ZERO, "faults must cost some time");
    }

    #[test]
    fn admission_rejects_with_reasons() {
        let mut cfg = config();
        cfg.admission = AdmissionConfig {
            max_queue_depth: 2,
            max_outstanding: Dur::from_millis(100),
        };
        let mut daemon = Daemon::new(&cfg);
        let c = |id: u64, mb: u64| {
            Coflow::builder(id)
                .arrival(Time::ZERO)
                .flow(0, 1, mb * 1_000_000)
                .build()
        };
        // 1 MB at 1 Gbps is 8 ms of demand; 100 ms cap fits 12.
        daemon.submit(c(0, 1)).unwrap();
        assert_eq!(daemon.submit(c(0, 1)), Err(RejectReason::DuplicateId));
        assert_eq!(daemon.submit(c(1, 13)), Err(RejectReason::DemandCap));
        let oob = Coflow::builder(9).arrival(Time::ZERO).flow(0, 7, 1).build();
        assert_eq!(daemon.submit(oob), Err(RejectReason::ExceedsFabric));
        daemon.submit(c(2, 1)).unwrap();
        assert_eq!(daemon.submit(c(3, 1)), Err(RejectReason::QueueFull));
        daemon.advance_to(Time::from_millis(50));
        let late = Coflow::builder(10)
            .arrival(Time::from_millis(1))
            .flow(0, 1, 1)
            .build();
        assert_eq!(daemon.submit(late), Err(RejectReason::ArrivalInPast));

        let t = daemon.telemetry();
        assert_eq!(t.admitted, 2);
        assert_eq!(t.rejected_total(), 5);
        for reason in [
            RejectReason::DuplicateId,
            RejectReason::DemandCap,
            RejectReason::QueueFull,
            RejectReason::ArrivalInPast,
            RejectReason::ExceedsFabric,
        ] {
            assert_eq!(t.rejected[reason.index()], 1, "{reason}");
        }
        // Rejected Coflows leave no trace: the admitted pair still drains.
        daemon.drain();
        assert_eq!(daemon.telemetry().completed, 2);
    }

    #[test]
    fn checkpoint_restore_resumes_identically() {
        let mut cfg = config();
        cfg.faults = FaultConfig {
            seed: 7,
            setup_failure_per_mille: 200,
            ..FaultConfig::default()
        };
        let coflows = workload(12);

        let mut whole = Daemon::new(&cfg);
        for c in &coflows {
            whole.submit(c.clone()).unwrap();
        }
        whole.drain();

        let mut first = Daemon::new(&cfg);
        for c in &coflows {
            first.submit(c.clone()).unwrap();
        }
        first.advance_to(Time::from_millis(40));
        let ckpt = first.checkpoint();
        drop(first);
        let mut resumed = Daemon::restore(&ckpt);
        resumed.drain();

        let key = |d: &Daemon| {
            d.completions()
                .iter()
                .map(|c| (c.outcome.coflow, c.outcome.finish, c.outcome.circuit_setups))
                .collect::<Vec<_>>()
        };
        assert_eq!(key(&whole), key(&resumed));
        assert_eq!(whole.fault_stats(), resumed.fault_stats());
        assert_eq!(whole.telemetry().cct.sum(), resumed.telemetry().cct.sum());
    }

    #[test]
    fn status_and_prometheus_render() {
        let cfg = config();
        let mut daemon = Daemon::new(&cfg);
        for c in workload(6) {
            daemon.submit(c).unwrap();
        }
        daemon.drain();

        let json = daemon.status_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"backend\": \"Sunflow\""));
        assert!(json.contains("\"switch_model\": \"not-all-stop\""));
        assert!(json.contains("\"admitted\": 6"));
        assert!(json.contains("\"completed\": 6"));
        assert!(json.contains("\"cct_ps\""));
        assert!(json.contains("\"queue_full\": 0"));

        let prom = daemon.prometheus();
        assert!(prom.contains("# TYPE ocs_daemon_admitted_total counter"));
        assert!(prom.contains("ocs_daemon_admitted_total{backend=\"Sunflow\"} 6"));
        assert!(
            prom.contains("ocs_daemon_rejected_total{backend=\"Sunflow\",reason=\"queue_full\"} 0")
        );
        assert!(prom.contains("ocs_daemon_cct_seconds_bucket"));
        assert!(prom.contains("ocs_daemon_cct_seconds_count{backend=\"Sunflow\"} 6"));
        assert!(prom.contains("le=\"+Inf\""));
        assert!(daemon.utilization() > 0.0 && daemon.utilization() <= 1.0);
    }

    #[test]
    fn multicore_backend_reports_per_core_telemetry() {
        let mut cfg = config();
        // Round-robin placement: each two-flow Coflow puts one flow on
        // each core, so both cores deterministically plan circuits.
        cfg.backend = "sunflow:2:round-robin".parse().expect("selector parses");
        let mut daemon = Daemon::new(&cfg);
        for c in workload(8) {
            daemon.submit(c).unwrap();
        }
        daemon.drain();
        assert_eq!(daemon.telemetry().completed, 8);

        let json = daemon.status_json();
        assert!(json.contains("\"cores\": ["), "status gains a cores array");
        assert!(json.contains("\"core\": 0"));
        assert!(json.contains("\"core\": 1"));

        let prom = daemon.prometheus();
        for core in ["0", "1"] {
            assert!(
                prom.contains(&format!(
                    "ocs_daemon_core_utilization{{backend=\"Sunflow\",core=\"{core}\"}}"
                )),
                "core {core} utilization series"
            );
            assert!(
                prom.contains(&format!(
                    "ocs_daemon_core_reservations_total{{backend=\"Sunflow\",core=\"{core}\"}}"
                )),
                "core {core} reservation counter"
            );
        }
        for core in 0..2 {
            let st = daemon.backend_core_status(core).expect("core in range");
            assert!(st.reservations_made > 0, "core {core} did work");
        }

        // The single-switch daemon emits no core series at all.
        let mut single = Daemon::new(&config());
        for c in workload(4) {
            single.submit(c).unwrap();
        }
        single.drain();
        assert!(!single.status_json().contains("\"cores\""));
        assert!(!single.prometheus().contains("ocs_daemon_core_"));
    }

    #[test]
    fn hybrid_backend_reports_split_telemetry() {
        let mut cfg = config();
        cfg.backend = "hybrid:threshold".parse().expect("selector parses");
        let mut daemon = Daemon::new(&cfg);
        for c in workload(8) {
            daemon.submit(c).unwrap();
        }
        daemon.drain();
        assert_eq!(daemon.telemetry().completed, 8);
        assert_eq!(daemon.split_label(), Some("threshold"));

        // Every flow in the test workload is under the 2 MB threshold,
        // so all 16 subflows ride the packet fabric.
        let s = daemon.stats();
        assert_eq!(s.split_evals, 8);
        assert_eq!(s.subflows_split, 16);
        assert!(s.bytes_to_packet > 0);

        let json = daemon.status_json();
        assert!(
            json.contains("\"split\": {\"policy\": \"threshold\""),
            "{json}"
        );
        assert!(json.contains("\"subflows_to_packet\": 16"), "{json}");

        let prom = daemon.prometheus();
        assert!(
            prom.contains("ocs_daemon_split_evals_total{backend=\"Hybrid\",split=\"threshold\"} 8")
        );
        assert!(prom.contains(
            "ocs_daemon_split_subflows_total{backend=\"Hybrid\",split=\"threshold\"} 16"
        ));
        assert!(prom.contains(
            "ocs_daemon_split_bytes_to_packet_total{backend=\"Hybrid\",split=\"threshold\"}"
        ));

        // Single-fabric daemons emit no split series at all.
        let single = Daemon::new(&config());
        assert_eq!(single.split_label(), None);
        assert!(!single.status_json().contains("\"split\""));
        assert!(!single.prometheus().contains("ocs_daemon_split_"));
    }

    #[test]
    fn every_backend_drains_the_trace() {
        for kind in BackendKind::ALL {
            let mut cfg = config();
            cfg.backend = kind;
            let mut daemon = Daemon::new(&cfg);
            for c in workload(8) {
                daemon.submit(c).unwrap();
            }
            daemon.drain();
            assert!(daemon.is_idle(), "{kind} drains to idle");
            assert_eq!(daemon.telemetry().completed, 8, "{kind} completes all");
            let json = daemon.status_json();
            assert!(
                json.contains(&format!("\"backend\": \"{}\"", kind.name())),
                "{kind} status names its backend"
            );
            let prom = daemon.prometheus();
            assert!(
                prom.contains(&format!(
                    "ocs_daemon_completed_total{{backend=\"{}\"}} 8",
                    kind.name()
                )),
                "{kind} metrics carry the backend label"
            );
        }
    }

    #[test]
    fn checkpoint_restore_works_for_every_backend() {
        // The control daemon runs the same command sequence uninterrupted
        // (circuit baselines re-plan at every advance boundary, so only
        // identical sequences are comparable across all backends).
        for kind in BackendKind::ALL {
            let mut cfg = config();
            cfg.backend = kind;

            let mut whole = Daemon::new(&cfg);
            for c in workload(6) {
                whole.submit(c).unwrap();
            }
            whole.advance_to(Time::from_millis(20));
            whole.drain();

            let mut first = Daemon::new(&cfg);
            for c in workload(6) {
                first.submit(c).unwrap();
            }
            first.advance_to(Time::from_millis(20));
            let resumed = Daemon::restore(&first.checkpoint());
            assert_eq!(resumed.now(), first.now(), "{kind} clock resumes");
            let mut resumed = resumed;
            resumed.drain();

            let key = |d: &Daemon| {
                d.completions()
                    .iter()
                    .map(|c| (c.outcome.coflow, c.outcome.finish))
                    .collect::<Vec<_>>()
            };
            assert_eq!(key(&whole), key(&resumed), "{kind} resumes identically");
        }
    }
}
