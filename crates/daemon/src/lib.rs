//! `ocs-daemon`: a real-time online Coflow scheduling service.
//!
//! Where `ocs-sim` replays a fixed workload to completion, this crate
//! runs the same schedulers as a *service*: Coflow arrivals stream in as
//! JSONL (stdin, file, or TCP), admission control applies back-pressure
//! with explicit reject reasons, a deterministic fault injector
//! exercises the retry/backoff path, and telemetry — CCT and
//! queue-latency histograms, utilization, fault counters — streams out
//! as a JSON status dump or backend-labeled Prometheus text. Any
//! [`ocs_sim::BackendKind`] can run the fabric — Sunflow (the default),
//! the circuit baselines, or the packet-switched fluid schedulers — all
//! behind the same admission, fault and telemetry surface. The whole
//! service state checkpoints and restores through [`DaemonCheckpoint`].
//!
//! Layers, bottom up:
//!
//! - [`jsonl`] — the wire format: one [`ArrivalSpec`] per line, parsed
//!   with a dependency-free recursive-descent JSON reader.
//! - [`faults`] — [`FaultInjector`], a seeded, hash-deterministic
//!   [`ocs_sim::SettleHook`] modelling circuit setup failures, port
//!   flaps and inflated reconfiguration delays, with exponential
//!   retry backoff.
//! - [`service`] — [`Daemon`]: admission control over any
//!   [`ocs_sim::SchedulingBackend`], telemetry, command-log
//!   checkpoint/restore, JSON and Prometheus rendering.
//! - [`ingest`] — [`run_pipelined`]: the high-throughput front end — a
//!   reader thread parsing JSONL into a bounded admission channel (typed
//!   backpressure when full), a batching admission loop driving the
//!   synchronous scheduling core, and an ack writer restoring line order.
//! - [`server`] — [`run_to_completion`] / [`serve_tcp`]: the synchronous
//!   reference ingestion loop with per-line acks and graceful drain, and
//!   the TCP front door feeding either loop.
//!
//! The `ocs-daemond` binary fronts all of it from the command line.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod faults;
pub mod ingest;
pub mod jsonl;
pub mod server;
pub mod service;

pub use faults::{FaultConfig, FaultInjector, FaultStats};
pub use ingest::{run_pipelined, OnFull, PipelineConfig, PipelineReport};
pub use jsonl::{parse_line, ArrivalSpec, ParseError};
pub use server::{
    run_to_completion, serve_tcp, IngestMode, ServeReport, ShutdownHandle, TcpServer,
};
pub use service::{
    AdmissionConfig, Daemon, DaemonCheckpoint, DaemonConfig, PolicyKind, RejectReason, Telemetry,
};
