//! Deterministic seeded fault injection for the scheduling service.
//!
//! Real optical switches occasionally fail to establish a circuit, drop
//! a port mid-transmission, or take longer than the nominal δ to retune.
//! [`FaultInjector`] models all three as a [`SettleHook`]: every settling
//! circuit rolls a pseudo-random hash of
//! `(seed, coflow, flow_idx, src, start)`, so a given reservation either
//! always faults or never does — replaying a trace with the same seed
//! reproduces the same fault sequence bit-for-bit, no RNG state to
//! thread through checkpoints.
//!
//! Shortfalls feed the stepper's deferral machinery: the shorted flow is
//! retried after an exponential backoff (`base * 2^(attempt-1)`, capped),
//! and per-flow attempt counts reset on the first fault-free settlement.
//! Faults never touch starvation-guard windows (the stepper settles
//! those outside the hook), so the §4.2 liveness floor survives any
//! fault rate.

use ocs_model::{Dur, Reservation, Time};
use ocs_sim::{SettleHook, SettleVerdict};
use std::collections::HashMap;

/// Probabilities (per mille) and backoff schedule of the injector.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultConfig {
    /// Seed of the deterministic fault stream.
    pub seed: u64,
    /// ‰ chance a circuit's setup failed: no data moves.
    pub setup_failure_per_mille: u16,
    /// ‰ chance a port flapped mid-transmission: half the data moves.
    pub port_flap_per_mille: u16,
    /// ‰ chance reconfiguration took 2δ: one extra δ of transmit lost.
    pub delta_inflation_per_mille: u16,
    /// First retry backoff.
    pub base_backoff: Dur,
    /// Backoff ceiling.
    pub max_backoff: Dur,
}

impl Default for FaultConfig {
    fn default() -> FaultConfig {
        FaultConfig {
            seed: 0,
            setup_failure_per_mille: 0,
            port_flap_per_mille: 0,
            delta_inflation_per_mille: 0,
            base_backoff: Dur::from_millis(5),
            max_backoff: Dur::from_millis(640),
        }
    }
}

impl FaultConfig {
    /// Total fault probability in per mille (must be ≤ 1000).
    pub fn total_per_mille(&self) -> u32 {
        self.setup_failure_per_mille as u32
            + self.port_flap_per_mille as u32
            + self.delta_inflation_per_mille as u32
    }

    /// True when every probability is zero (the injector is a no-op).
    pub fn is_fault_free(&self) -> bool {
        self.total_per_mille() == 0
    }
}

/// Counters of what the injector did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Circuits whose setup failed outright.
    pub setup_failures: u64,
    /// Circuits that lost half their transmit to a port flap.
    pub port_flaps: u64,
    /// Circuits that lost one δ of transmit to slow retuning.
    pub delta_inflations: u64,
    /// Retries scheduled (equals total faults on non-degenerate flows).
    pub retries: u64,
    /// Flows that recovered (settled fault-free after ≥ 1 fault).
    pub recoveries: u64,
    /// Largest consecutive-fault streak seen on any single flow.
    pub max_attempts: u32,
    /// Total backoff time imposed across all retries.
    pub backoff_total: Dur,
}

/// splitmix64 finalizer — a well-mixed 64-bit hash step.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum FaultKind {
    SetupFailure,
    PortFlap,
    DeltaInflation,
}

/// The deterministic fault-injecting [`SettleHook`].
#[derive(Clone, Debug)]
pub struct FaultInjector {
    config: FaultConfig,
    delta: Dur,
    /// Consecutive faults per flow, for exponential backoff.
    attempts: HashMap<(u64, usize), u32>,
    stats: FaultStats,
}

impl FaultInjector {
    /// Build an injector for a fabric with reconfiguration delay `delta`.
    ///
    /// # Panics
    /// Panics if the per-mille probabilities sum above 1000.
    pub fn new(config: FaultConfig, delta: Dur) -> FaultInjector {
        assert!(
            config.total_per_mille() <= 1000,
            "fault probabilities sum to more than 1000 per mille"
        );
        FaultInjector {
            config,
            delta,
            attempts: HashMap::new(),
            stats: FaultStats::default(),
        }
    }

    /// Counters so far.
    pub fn stats(&self) -> FaultStats {
        self.stats
    }

    /// Flows currently carrying a non-zero consecutive-fault streak.
    pub fn flows_in_backoff(&self) -> usize {
        self.attempts.len()
    }

    /// The deterministic roll for one reservation, in `[0, 1000)`.
    fn roll(&self, r: &Reservation) -> u32 {
        let mut h = mix(self.config.seed);
        h = mix(h ^ r.flow.coflow);
        h = mix(h ^ r.flow.flow_idx as u64);
        h = mix(h ^ r.src as u64);
        h = mix(h ^ r.start.as_ps());
        (h % 1000) as u32
    }

    fn kind_for(&self, r: &Reservation) -> Option<FaultKind> {
        let roll = self.roll(r);
        let setup = self.config.setup_failure_per_mille as u32;
        let flap = setup + self.config.port_flap_per_mille as u32;
        let inflate = flap + self.config.delta_inflation_per_mille as u32;
        if roll < setup {
            Some(FaultKind::SetupFailure)
        } else if roll < flap {
            Some(FaultKind::PortFlap)
        } else if roll < inflate {
            Some(FaultKind::DeltaInflation)
        } else {
            None
        }
    }

    /// `base * 2^(attempt-1)`, saturating at the configured ceiling.
    fn backoff(&self, attempt: u32) -> Dur {
        let base = self.config.base_backoff.as_ps().max(1);
        let max = self.config.max_backoff.as_ps().max(base);
        let exp = attempt.saturating_sub(1);
        // A shift that would push bits out the top has already passed
        // any plausible ceiling; clamp instead of wrapping.
        let shifted = if exp >= base.leading_zeros() {
            max
        } else {
            base << exp
        };
        Dur::from_ps(shifted.min(max))
    }
}

impl SettleHook for FaultInjector {
    /// With every fault class at zero probability the injector is a
    /// pass-through: no rolls, no streaks, no stats. Advertising that
    /// lets sharded backends advance fault-free port groups in parallel.
    fn is_inert(&self) -> bool {
        self.config.is_fault_free()
    }

    fn on_settle(&mut self, resv: &Reservation, available: Dur, _now: Time) -> SettleVerdict {
        if self.config.is_fault_free() || available.is_zero() {
            // Nothing to lose (already-cut circuits settle with zero
            // transmit); don't charge a fault or touch the streak.
            return SettleVerdict::full(available);
        }
        let key = (resv.flow.coflow, resv.flow.flow_idx);
        let Some(kind) = self.kind_for(resv) else {
            if self.attempts.remove(&key).is_some() {
                self.stats.recoveries += 1;
            }
            return SettleVerdict::full(available);
        };
        let served = match kind {
            FaultKind::SetupFailure => {
                self.stats.setup_failures += 1;
                Dur::ZERO
            }
            FaultKind::PortFlap => {
                self.stats.port_flaps += 1;
                Dur::from_ps(available.as_ps() / 2)
            }
            FaultKind::DeltaInflation => {
                self.stats.delta_inflations += 1;
                available.saturating_sub(self.delta)
            }
        };
        if served >= available {
            // The inflation was absorbed by slack (transmit longer than
            // one δ of loss could matter): effectively fault-free.
            return SettleVerdict::full(available);
        }
        let attempt = {
            let a = self.attempts.entry(key).or_insert(0);
            *a += 1;
            *a
        };
        self.stats.retries += 1;
        self.stats.max_attempts = self.stats.max_attempts.max(attempt);
        let backoff = self.backoff(attempt);
        self.stats.backoff_total += backoff;
        SettleVerdict::shorted(served, backoff)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ocs_model::FlowRef;

    fn resv(coflow: u64, flow_idx: usize, src: usize, start_ms: u64) -> Reservation {
        Reservation {
            src,
            dst: 0,
            start: Time::from_millis(start_ms),
            end: Time::from_millis(start_ms + 20),
            flow: FlowRef { coflow, flow_idx },
        }
    }

    fn injector(setup: u16, flap: u16, inflate: u16) -> FaultInjector {
        FaultInjector::new(
            FaultConfig {
                seed: 7,
                setup_failure_per_mille: setup,
                port_flap_per_mille: flap,
                delta_inflation_per_mille: inflate,
                ..FaultConfig::default()
            },
            Dur::from_millis(10),
        )
    }

    #[test]
    fn verdicts_are_deterministic_per_seed() {
        let mut a = injector(100, 100, 100);
        let mut b = injector(100, 100, 100);
        let avail = Dur::from_millis(15);
        for i in 0..200u64 {
            let r = resv(i % 10, (i % 3) as usize, (i % 4) as usize, i * 7);
            assert_eq!(
                a.on_settle(&r, avail, r.end),
                b.on_settle(&r, avail, r.end),
                "iteration {i}"
            );
        }
        assert_eq!(a.stats(), b.stats());
        // A different seed produces a different fault pattern.
        let mut c = FaultInjector::new(
            FaultConfig {
                seed: 8,
                setup_failure_per_mille: 100,
                port_flap_per_mille: 100,
                delta_inflation_per_mille: 100,
                ..FaultConfig::default()
            },
            Dur::from_millis(10),
        );
        let mut diverged = false;
        for i in 0..200u64 {
            let r = resv(i % 10, (i % 3) as usize, (i % 4) as usize, i * 7);
            if a.kind_for(&r) != c.kind_for(&r) {
                diverged = true;
            }
            let _ = c.on_settle(&r, avail, r.end);
        }
        assert!(diverged, "seed change must alter the fault stream");
    }

    #[test]
    fn fault_rates_track_configuration() {
        let mut inj = injector(200, 0, 0); // 20 % setup failures
        let avail = Dur::from_millis(15);
        for i in 0..2_000u64 {
            let r = resv(i, 0, (i % 8) as usize, i * 3);
            let _ = inj.on_settle(&r, avail, r.end);
        }
        let failures = inj.stats().setup_failures;
        assert!(
            (250..=550).contains(&failures),
            "20% of 2000 ≈ 400, got {failures}"
        );
        assert_eq!(inj.stats().port_flaps, 0);
        assert_eq!(inj.stats().retries, failures);
    }

    #[test]
    fn backoff_grows_exponentially_and_caps() {
        let inj = injector(1000, 0, 0);
        let b = FaultConfig::default().base_backoff;
        assert_eq!(inj.backoff(1), b);
        assert_eq!(inj.backoff(2), Dur::from_ps(b.as_ps() * 2));
        assert_eq!(inj.backoff(3), Dur::from_ps(b.as_ps() * 4));
        assert_eq!(inj.backoff(64), FaultConfig::default().max_backoff);
        assert_eq!(inj.backoff(1_000_000), FaultConfig::default().max_backoff);
    }

    #[test]
    fn streaks_reset_on_success_and_count_recoveries() {
        let mut inj = injector(1000, 0, 0); // always fault...
        let avail = Dur::from_millis(15);
        let r = resv(1, 0, 0, 100);
        let v1 = inj.on_settle(&r, avail, r.end);
        assert_eq!(v1.served, Dur::ZERO);
        let r2 = resv(1, 0, 0, 150);
        let v2 = inj.on_settle(&r2, avail, r2.end);
        assert!(
            v2.retry_after.unwrap() > v1.retry_after.unwrap(),
            "backoff grows"
        );
        // ...then stop faulting: the next settlement recovers the flow.
        inj.config.setup_failure_per_mille = 0;
        inj.config.port_flap_per_mille = 0;
        inj.config.delta_inflation_per_mille = 0;
        let r3 = resv(1, 0, 0, 300);
        let v3 = inj.on_settle(&r3, avail, r3.end);
        assert_eq!(v3, SettleVerdict::full(avail));
        assert_eq!(
            inj.stats().recoveries,
            0,
            "fault-free config short-circuits"
        );
        assert_eq!(
            inj.flows_in_backoff(),
            1,
            "streak map untouched by no-op path"
        );
    }

    #[test]
    fn zero_config_is_transparent() {
        let mut inj = injector(0, 0, 0);
        let avail = Dur::from_millis(15);
        for i in 0..50u64 {
            let r = resv(i, 0, 0, i * 11);
            assert_eq!(inj.on_settle(&r, avail, r.end), SettleVerdict::full(avail));
        }
        assert_eq!(inj.stats(), FaultStats::default());
    }

    #[test]
    fn inflation_absorbed_by_long_transmits() {
        let mut inj = injector(0, 0, 1000); // always inflate δ
                                            // Transmit far longer than δ: the inflation shows as a shortfall.
        let r = resv(1, 0, 0, 0);
        let v = inj.on_settle(&r, Dur::from_millis(50), r.end);
        assert_eq!(v.served, Dur::from_millis(40));
        assert!(v.retry_after.is_some());
    }
}
