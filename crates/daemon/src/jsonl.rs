//! The daemon's wire format: one JSON object per line describing one
//! Coflow arrival.
//!
//! ```json
//! {"id": 17, "arrival_ms": 250, "flows": [[0, 3, 1000000], [2, 1, 500000]]}
//! ```
//!
//! * `id` — unique Coflow id (non-negative integer, required);
//! * `arrival_ms` — virtual arrival time in milliseconds (optional; a
//!   line without it arrives "now", i.e. at the daemon's current clock);
//! * `flows` — non-empty array of `[src_port, dst_port, bytes]` triples.
//!
//! The parser is a small hand-rolled recursive-descent JSON reader (the
//! workspace carries no external dependencies); unknown keys are ignored
//! so the format can grow.

use ocs_model::{Coflow, Time};
use std::collections::HashMap;
use std::fmt;

/// One parsed arrival line.
#[derive(Clone, Debug, PartialEq)]
pub struct ArrivalSpec {
    /// Coflow id.
    pub id: u64,
    /// Virtual arrival time; `None` means "when the line is read".
    pub arrival_ms: Option<u64>,
    /// `(src, dst, bytes)` per flow.
    pub flows: Vec<(usize, usize, u64)>,
}

impl ArrivalSpec {
    /// Build the [`Coflow`] this line describes, defaulting a missing
    /// arrival to `default_arrival`.
    pub fn to_coflow(&self, default_arrival: Time) -> Coflow {
        let arrival = self.arrival_ms.map_or(default_arrival, Time::from_millis);
        let mut b = Coflow::builder(self.id).arrival(arrival);
        for &(src, dst, bytes) in &self.flows {
            b = b.flow(src, dst, bytes);
        }
        b.build()
    }

    /// Render the canonical JSONL line for this spec (what `gen` emits).
    pub fn render(&self) -> String {
        let flows: Vec<String> = self
            .flows
            .iter()
            .map(|(s, d, b)| format!("[{s}, {d}, {b}]"))
            .collect();
        match self.arrival_ms {
            Some(ms) => format!(
                "{{\"id\": {}, \"arrival_ms\": {}, \"flows\": [{}]}}",
                self.id,
                ms,
                flows.join(", ")
            ),
            None => format!("{{\"id\": {}, \"flows\": [{}]}}", self.id, flows.join(", ")),
        }
    }
}

/// Why a line was rejected by the parser.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable reason.
    pub reason: String,
    /// Byte offset in the line where parsing stopped (best effort).
    pub at: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} (at byte {})", self.reason, self.at)
    }
}

impl std::error::Error for ParseError {}

/// A parsed JSON value — just enough of the data model for the formats
/// the daemon speaks.
#[derive(Clone, Debug, PartialEq)]
enum Value {
    Null,
    Bool(bool),
    /// All JSON numbers as f64; every quantity the daemon reads (ids,
    /// ports, byte counts, milliseconds) is well under 2^53.
    Num(f64),
    Str(String),
    Arr(Vec<Value>),
    Obj(HashMap<String, Value>),
}

struct Parser<'a> {
    b: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err<T>(&self, reason: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError {
            reason: reason.into(),
            at: self.pos,
        })
    }

    fn skip_ws(&mut self) {
        while self.pos < self.b.len() && self.b[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.pos).copied()
    }

    fn eat(&mut self, c: u8) -> Result<(), ParseError> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            self.err(format!("expected '{}'", c as char))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => self.err("expected a JSON value"),
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, ParseError> {
        if self.b[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            self.err(format!("expected '{lit}'"))
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let s = std::str::from_utf8(&self.b[start..self.pos]).expect("digits are UTF-8");
        match s.parse::<f64>() {
            Ok(x) if x.is_finite() => Ok(Value::Num(x)),
            _ => self.err(format!("bad number {s:?}")),
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return self.err("unterminated string"),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or(ParseError {
                        reason: "dangling escape".into(),
                        at: self.pos,
                    })?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            if self.pos + 4 > self.b.len() {
                                return self.err("truncated \\u escape");
                            }
                            let hex = std::str::from_utf8(&self.b[self.pos..self.pos + 4]).ok();
                            let code = hex.and_then(|h| u32::from_str_radix(h, 16).ok());
                            match code.and_then(char::from_u32) {
                                Some(c) => out.push(c),
                                // Surrogate pairs are beyond what this
                                // format needs; reject them plainly.
                                None => return self.err("unsupported \\u escape"),
                            }
                            self.pos += 4;
                        }
                        _ => return self.err("unknown escape"),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (multi-byte safe).
                    let rest =
                        std::str::from_utf8(&self.b[self.pos..]).map_err(|_| ParseError {
                            reason: "invalid UTF-8".into(),
                            at: self.pos,
                        })?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.eat(b'[')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(out));
        }
        loop {
            out.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(out));
                }
                _ => return self.err("expected ',' or ']'"),
            }
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.eat(b'{')?;
        let mut out = HashMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(out));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            let val = self.value()?;
            out.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(out));
                }
                _ => return self.err("expected ',' or '}'"),
            }
        }
    }
}

fn as_u64(v: &Value, what: &str) -> Result<u64, ParseError> {
    match v {
        Value::Num(x) if *x >= 0.0 && x.fract() == 0.0 && *x <= 9e15 => Ok(*x as u64),
        _ => Err(ParseError {
            reason: format!("{what} must be a non-negative integer"),
            at: 0,
        }),
    }
}

/// Parse one JSONL arrival line.
pub fn parse_line(line: &str) -> Result<ArrivalSpec, ParseError> {
    let mut p = Parser {
        b: line.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.b.len() {
        return p.err("trailing garbage after JSON object");
    }
    let Value::Obj(obj) = v else {
        return Err(ParseError {
            reason: "arrival line must be a JSON object".into(),
            at: 0,
        });
    };
    let id = as_u64(
        obj.get("id").ok_or(ParseError {
            reason: "missing \"id\"".into(),
            at: 0,
        })?,
        "\"id\"",
    )?;
    let arrival_ms = obj
        .get("arrival_ms")
        .map(|v| as_u64(v, "\"arrival_ms\""))
        .transpose()?;
    let Some(Value::Arr(raw_flows)) = obj.get("flows") else {
        return Err(ParseError {
            reason: "missing or non-array \"flows\"".into(),
            at: 0,
        });
    };
    if raw_flows.is_empty() {
        return Err(ParseError {
            reason: "\"flows\" must be non-empty".into(),
            at: 0,
        });
    }
    let mut flows = Vec::with_capacity(raw_flows.len());
    for f in raw_flows {
        let Value::Arr(t) = f else {
            return Err(ParseError {
                reason: "each flow must be [src, dst, bytes]".into(),
                at: 0,
            });
        };
        if t.len() != 3 {
            return Err(ParseError {
                reason: "each flow must be [src, dst, bytes]".into(),
                at: 0,
            });
        }
        let src = as_u64(&t[0], "flow src")? as usize;
        let dst = as_u64(&t[1], "flow dst")? as usize;
        let bytes = as_u64(&t[2], "flow bytes")?;
        if bytes == 0 {
            return Err(ParseError {
                reason: "flow bytes must be positive".into(),
                at: 0,
            });
        }
        flows.push((src, dst, bytes));
    }
    Ok(ArrivalSpec {
        id,
        arrival_ms,
        flows,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_canonical_line() {
        let s =
            parse_line(r#"{"id": 17, "arrival_ms": 250, "flows": [[0, 3, 1000000], [2, 1, 5]]}"#)
                .unwrap();
        assert_eq!(s.id, 17);
        assert_eq!(s.arrival_ms, Some(250));
        assert_eq!(s.flows, vec![(0, 3, 1_000_000), (2, 1, 5)]);
    }

    #[test]
    fn arrival_is_optional_and_unknown_keys_ignored() {
        let s = parse_line(r#"{"id": 1, "flows": [[0, 1, 9]], "note": "hi", "x": null}"#).unwrap();
        assert_eq!(s.arrival_ms, None);
        let c = s.to_coflow(Time::from_millis(42));
        assert_eq!(c.arrival(), Time::from_millis(42));
        assert_eq!(c.num_flows(), 1);
    }

    #[test]
    fn render_round_trips() {
        let spec = ArrivalSpec {
            id: 9,
            arrival_ms: Some(1234),
            flows: vec![(0, 1, 1_000_000), (3, 2, 77)],
        };
        assert_eq!(parse_line(&spec.render()).unwrap(), spec);
        let no_arrival = ArrivalSpec {
            arrival_ms: None,
            ..spec
        };
        assert_eq!(parse_line(&no_arrival.render()).unwrap(), no_arrival);
    }

    #[test]
    fn rejects_malformed_lines() {
        for (line, needle) in [
            ("", "expected a JSON value"),
            ("[1, 2]", "must be a JSON object"),
            (r#"{"flows": [[0, 1, 9]]}"#, "missing \"id\""),
            (r#"{"id": -3, "flows": [[0, 1, 9]]}"#, "non-negative"),
            (
                r#"{"id": 1.5, "flows": [[0, 1, 9]]}"#,
                "non-negative integer",
            ),
            (r#"{"id": 1}"#, "\"flows\""),
            (r#"{"id": 1, "flows": []}"#, "non-empty"),
            (r#"{"id": 1, "flows": [[0, 1]]}"#, "[src, dst, bytes]"),
            (r#"{"id": 1, "flows": [[0, 1, 0]]}"#, "positive"),
            (r#"{"id": 1, "flows": [[0, 1, 9]]} extra"#, "trailing"),
            (r#"{"id": 1, "flows": [[0, 1, 9]"#, "expected"),
        ] {
            let e = parse_line(line).expect_err(line);
            assert!(
                e.reason.contains(needle),
                "line {line:?}: got {:?}, wanted {needle:?}",
                e.reason
            );
        }
    }

    #[test]
    fn strings_and_escapes() {
        let s = parse_line(r#"{"id": 2, "flows": [[1, 2, 3]], "note": "a\"b\\c\ndA"}"#);
        assert!(s.is_ok(), "{s:?}");
    }
}
