//! The `Strategy` trait and its combinators.

/// The runner's RNG: xoshiro256** seeded via SplitMix64.
#[derive(Clone, Debug)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// A generator whose stream is a pure function of `seed`.
    pub fn new(seed: u64) -> TestRng {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        TestRng {
            s: [next(), next(), next(), next()],
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform integer in `[0, span)` without modulo bias.
    pub fn below(&mut self, span: u64) -> u64 {
        debug_assert!(span > 0);
        let zone = u64::MAX - (u64::MAX % span);
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % span;
            }
        }
    }

    /// Uniform float in `[0, 1)` with 53 bits of precision.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform every generated value with `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generate a value, then generate from the strategy `f` derives
    /// from it (dependent generation).
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// Always produces a clone of its payload.
#[derive(Clone, Copy, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone, Copy, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Clone, Copy, Debug)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Box a strategy for heterogeneous storage (used by `prop_oneof!`).
pub fn boxed<S: Strategy + 'static>(s: S) -> Box<dyn Strategy<Value = S::Value>> {
    Box::new(s)
}

/// Uniform choice among strategies of a common value type.
pub struct OneOf<V> {
    options: Vec<Box<dyn Strategy<Value = V>>>,
}

impl<V> Strategy for OneOf<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let k = rng.below(self.options.len() as u64) as usize;
        self.options[k].generate(rng)
    }
}

/// Build a [`OneOf`] from boxed options.
///
/// # Panics
/// Panics if `options` is empty.
pub fn one_of<V>(options: Vec<Box<dyn Strategy<Value = V>>>) -> OneOf<V> {
    assert!(!options.is_empty(), "prop_oneof! needs at least one option");
    OneOf { options }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = self.end.wrapping_sub(self.start) as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = hi.wrapping_sub(lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(rng.below(span + 1) as $t)
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for std::ops::RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        let grid = (1u64 << 53) - 1;
        let u = (rng.next_u64() >> 11) as f64 / grid as f64;
        lo + u * (hi - lo)
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($s,)+) = self;
                ($($s.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

/// Length specification for collection strategies.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // inclusive
}

impl SizeRange {
    /// Draw a length.
    pub fn sample(&self, rng: &mut TestRng) -> usize {
        if self.lo == self.hi {
            return self.lo;
        }
        self.lo + rng.below((self.hi - self.lo + 1) as u64) as usize
    }

    /// The minimum admissible length.
    pub fn min(&self) -> usize {
        self.lo
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { lo: n, hi: n }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_and_tuples_compose() {
        let mut rng = TestRng::new(1);
        let strat = (0usize..4, 1u64..=8).prop_map(|(a, b)| a as u64 + b);
        for _ in 0..500 {
            let v = strat.generate(&mut rng);
            assert!((1..=11).contains(&v));
        }
    }

    #[test]
    fn flat_map_chains_dependent_values() {
        let mut rng = TestRng::new(2);
        let strat = (1usize..5).prop_flat_map(|n| crate::collection::vec(0u64..10, n));
        for _ in 0..200 {
            let v = strat.generate(&mut rng);
            assert!((1..5).contains(&v.len()));
        }
    }

    #[test]
    fn one_of_draws_from_all_options() {
        let mut rng = TestRng::new(3);
        let strat = one_of(vec![
            boxed(Just(1u32)),
            boxed(Just(2u32)),
            boxed(Just(3u32)),
        ]);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[strat.generate(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }

    #[test]
    fn btree_set_respects_min_size() {
        let mut rng = TestRng::new(4);
        let strat = crate::collection::btree_set(0usize..6, 1..=6);
        for _ in 0..200 {
            let s = strat.generate(&mut rng);
            assert!((1..=6).contains(&s.len()));
        }
    }
}
