//! Offline shim for the subset of the `proptest` 1.x API used by this
//! workspace.
//!
//! The build environment has no network access, so the real `proptest`
//! crate cannot be fetched. This shim keeps the same *test-facing*
//! surface — `proptest!`, `prop_assert*`, `prop_oneof!`, `Just`,
//! `any`, range and tuple strategies, `collection::{vec, btree_set}`,
//! `Strategy::{prop_map, prop_flat_map}` and
//! `ProptestConfig::with_cases` — backed by a plain seeded-random case
//! runner:
//!
//! * **Deterministic**: the RNG seed is a hash of the test's module
//!   path and name, so every run explores the same cases. Set
//!   `PROPTEST_CASES` to change the case count without recompiling.
//! * **No shrinking**: a failing case reports its index and seed
//!   instead of minimizing. That trades debugging convenience for
//!   zero dependencies.

pub mod strategy;

pub mod arbitrary {
    //! `any::<T>()` — standalone generation for primitive types.

    use crate::strategy::{Strategy, TestRng};

    /// Types with a canonical "whole domain" strategy.
    pub trait Arbitrary: Sized {
        /// Draw one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// The strategy returned by [`any`].
    #[derive(Clone, Copy, Debug)]
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// A strategy producing any value of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }
}

pub mod collection {
    //! Collection strategies: `vec` and `btree_set`.

    use crate::strategy::{SizeRange, Strategy, TestRng};
    use std::collections::BTreeSet;

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.sample(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A vector of `size.sample()` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy for `BTreeSet<S::Value>` with a target size drawn from
    /// `size`.
    #[derive(Clone, Debug)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let target = self.size.sample(rng);
            let mut out = BTreeSet::new();
            // Duplicates are re-drawn; bail out if the element domain is
            // too small to ever reach the minimum size.
            let mut tries = 0usize;
            let max_tries = 1000 + target * 100;
            while out.len() < target && tries < max_tries {
                out.insert(self.element.generate(rng));
                tries += 1;
            }
            assert!(
                out.len() >= self.size.min(),
                "btree_set: element domain too small for requested size"
            );
            out
        }
    }

    /// A set of roughly `size.sample()` distinct elements from `element`.
    pub fn btree_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod test_runner {
    //! The case runner: configuration, seeding, and the RNG.

    pub use crate::strategy::TestRng;

    /// Subset of proptest's run configuration: just the case count.
    #[derive(Clone, Copy, Debug)]
    pub struct ProptestConfig {
        /// Number of random cases to run per test.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 256 }
        }
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }

        /// Case count after applying the `PROPTEST_CASES` env override.
        pub fn resolved_cases(&self) -> u32 {
            match std::env::var("PROPTEST_CASES") {
                Ok(v) => v
                    .parse()
                    .expect("PROPTEST_CASES must be a non-negative integer"),
                Err(_) => self.cases,
            }
        }
    }

    /// Failure raised by a test case. The shim's `prop_assert!` macros
    /// panic instead of returning this, so it exists purely so helper
    /// functions can keep proptest's `Result<_, TestCaseError>`
    /// signatures.
    #[derive(Clone, Debug)]
    pub struct TestCaseError(pub String);

    /// Result alias mirroring `proptest::test_runner::TestCaseResult`.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Deterministic 64-bit seed from a test's fully qualified name
    /// (FNV-1a).
    pub fn seed_for(name: &str) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.as_bytes() {
            h ^= *b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }

    /// Prints the failing case on panic so failures are reproducible
    /// even without shrinking.
    pub struct CaseGuard {
        /// Case index within the run.
        pub case: u32,
        /// The run's RNG seed.
        pub seed: u64,
        /// Fully qualified test name.
        pub name: &'static str,
    }

    impl Drop for CaseGuard {
        fn drop(&mut self) {
            if std::thread::panicking() {
                eprintln!(
                    "proptest shim: {} failed at case {} (seed {:#018x}); \
                     re-run reproduces it deterministically",
                    self.name, self.case, self.seed
                );
            }
        }
    }
}

pub mod prelude {
    //! One-stop import mirroring `proptest::prelude`.
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Assert inside a property test (panics like `assert!`; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Equality assertion inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Inequality assertion inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::one_of(vec![$($crate::strategy::boxed($strat)),+])
    };
}

/// Define property tests. Each `pat in strategy` binding is drawn
/// freshly for every case.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($config:expr) $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            #[test]
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $config;
                let __name = concat!(module_path!(), "::", stringify!($name));
                let __seed = $crate::test_runner::seed_for(__name);
                let mut __rng = $crate::test_runner::TestRng::new(__seed);
                let __strats = ($($strat,)+);
                for __case in 0..__config.resolved_cases() {
                    let __guard = $crate::test_runner::CaseGuard {
                        case: __case,
                        seed: __seed,
                        name: __name,
                    };
                    let ($($pat,)+) =
                        $crate::strategy::Strategy::generate(&__strats, &mut __rng);
                    $body
                    drop(__guard);
                }
            }
        )*
    };
}
