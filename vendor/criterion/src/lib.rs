//! Offline shim for the subset of the `criterion` 0.5 API used by this
//! workspace's micro-benchmarks.
//!
//! The build environment cannot fetch the real crate, so this shim
//! provides the same bench-facing surface (`criterion_group!`,
//! `criterion_main!`, `Criterion::benchmark_group`, `bench_function`,
//! `bench_with_input`, `Bencher::iter`, `black_box`) with a simple but
//! honest measurement loop:
//!
//! * one untimed warm-up call;
//! * iteration count doubled until a batch takes ≥ 50 ms (so per-call
//!   timer overhead is amortized), capped by a wall budget;
//! * median-of-batches per-iteration time reported on stdout as
//!   `bench: <group>/<name> ... <time>/iter`.
//!
//! Set `CRITERION_BUDGET_MS` to change the per-benchmark wall budget
//! (default 1000 ms).

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier for a parameterized benchmark, mirroring
/// `criterion::BenchmarkId`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id rendering as the parameter alone.
    pub fn from_parameter(p: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId { id: p.to_string() }
    }

    /// An id rendering as `function/parameter`.
    pub fn new(function: impl Into<String>, p: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{}", function.into(), p),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Passed to the closure under measurement; its [`iter`](Bencher::iter)
/// method runs and times the workload.
pub struct Bencher {
    /// Collected (iterations, elapsed) batches.
    batches: Vec<(u64, Duration)>,
}

impl Bencher {
    /// Measure `f`, amortizing timer overhead over growing batches.
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        black_box(f()); // warm-up, untimed
        let budget = Duration::from_millis(
            std::env::var("CRITERION_BUDGET_MS")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(1000),
        );
        let started = Instant::now();
        let mut iters: u64 = 1;
        while started.elapsed() < budget {
            let t0 = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let dt = t0.elapsed();
            self.batches.push((iters, dt));
            if dt < Duration::from_millis(50) {
                iters = iters.saturating_mul(2);
            }
        }
    }

    fn per_iter(&self) -> Option<Duration> {
        let mut per: Vec<f64> = self
            .batches
            .iter()
            .filter(|(n, _)| *n > 0)
            .map(|(n, d)| d.as_secs_f64() / *n as f64)
            .collect();
        if per.is_empty() {
            return None;
        }
        per.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
        Some(Duration::from_secs_f64(per[per.len() / 2]))
    }
}

fn render(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 10_000 {
        format!("{ns} ns")
    } else if ns < 10_000_000 {
        format!("{:.2} us", ns as f64 / 1e3)
    } else if ns < 10_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'c> {
    name: String,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    fn run(&mut self, id: String, f: impl FnOnce(&mut Bencher)) {
        let mut b = Bencher {
            batches: Vec::new(),
        };
        f(&mut b);
        match b.per_iter() {
            Some(t) => println!("bench: {}/{id} ... {}/iter", self.name, render(t)),
            None => println!("bench: {}/{id} ... no samples", self.name),
        }
    }

    /// Benchmark a closure.
    pub fn bench_function(&mut self, id: impl std::fmt::Display, f: impl FnOnce(&mut Bencher)) {
        self.run(id.to_string(), f);
    }

    /// Benchmark a closure against a borrowed input.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        f: impl FnOnce(&mut Bencher, &I),
    ) {
        self.run(id.to_string(), |b| f(b, input));
    }

    /// End the group (prints nothing; exists for API parity).
    pub fn finish(self) {}
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _criterion: self,
        }
    }

    /// Benchmark a closure outside any group.
    pub fn bench_function(&mut self, id: impl std::fmt::Display, f: impl FnOnce(&mut Bencher)) {
        let mut g = self.benchmark_group("bench");
        g.bench_function(id, f);
        g.finish();
    }
}

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Generate `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $($group(&mut c);)+
        }
    };
}
