//! Offline shim for the subset of the `rand` 0.8 API used by this
//! workspace.
//!
//! The build environment has no network access and no crates.io mirror,
//! so the real `rand` crate cannot be fetched. Everything in this
//! workspace only needs a *deterministic, seedable* generator with
//! `gen`, `gen_range` and `seed_from_u64` — the statistical quality bar
//! of a simulation workload generator, not of a cryptographic RNG.
//!
//! [`rngs::StdRng`] here is an xoshiro256** generator seeded via
//! SplitMix64 (the construction recommended by its authors). Streams
//! differ from upstream `rand`'s `StdRng` (which is ChaCha12), so
//! workloads generated from a given seed differ numerically from ones
//! produced with the real crate — but they are deterministic per seed,
//! which is the only property the workspace relies on.

/// A source of random 64-bit words.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256**.
    ///
    /// Not the upstream ChaCha12-based `StdRng` — see the crate docs.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// A type that [`Rng::gen`] can produce from uniform random bits.
pub trait Standard: Sized {
    /// Draw one value.
    fn from_rng(rng: &mut dyn RngCore) -> Self;
}

impl Standard for u64 {
    fn from_rng(rng: &mut dyn RngCore) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn from_rng(rng: &mut dyn RngCore) -> u32 {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn from_rng(rng: &mut dyn RngCore) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn from_rng(rng: &mut dyn RngCore) -> f64 {
        // 53 uniform bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A range [`Rng::gen_range`] can sample from.
pub trait SampleRange {
    /// The sampled type.
    type Output;
    /// Draw one value uniformly from the range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn sample(self, rng: &mut dyn RngCore) -> Self::Output;
}

fn uniform_u64(rng: &mut dyn RngCore, span: u64) -> u64 {
    debug_assert!(span > 0);
    // Rejection sampling to avoid modulo bias.
    let zone = u64::MAX - (u64::MAX % span);
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % span;
        }
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for std::ops::Range<$t> {
            type Output = $t;
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + uniform_u64(rng, span) as $t
            }
        }
        impl SampleRange for std::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + uniform_u64(rng, span + 1) as $t
            }
        }
    )*};
}

int_sample_range!(usize, u64, u32);

impl SampleRange for std::ops::Range<f64> {
    type Output = f64;
    fn sample(self, rng: &mut dyn RngCore) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f64::from_rng(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange for std::ops::RangeInclusive<f64> {
    type Output = f64;
    fn sample(self, rng: &mut dyn RngCore) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        // 53-bit grid over the closed interval; the endpoint is reachable.
        let grid = (1u64 << 53) - 1;
        let u = (rng.next_u64() >> 11) as f64 / grid as f64;
        lo + u * (hi - lo)
    }
}

/// The user-facing sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draw a value of type `T` from its standard distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_rng(self)
    }

    /// Draw uniformly from `range`.
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        f64::from_rng(self) < p
    }
}

impl<T: RngCore> Rng for T {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..2000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(-0.25f64..=0.25);
            assert!((-0.25..=0.25).contains(&y));
            let z = rng.gen_range(1e-12f64..1.0);
            assert!((1e-12..1.0).contains(&z));
            let w: f64 = rng.gen();
            assert!((0.0..1.0).contains(&w));
        }
    }

    #[test]
    fn inclusive_integer_range_hits_endpoints() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.gen_range(0u64..=3) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
