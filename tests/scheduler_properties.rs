//! Cross-crate property tests: randomized Coflows through every
//! scheduler in the workspace, checking the invariants that must hold
//! regardless of input.

use proptest::prelude::*;
use sunflow::baselines::CircuitScheduler;
use sunflow::packet::{Aalo, Varys};
use sunflow::prelude::*;

fn arb_coflow() -> impl Strategy<Value = Coflow> {
    proptest::collection::btree_set((0usize..6, 0usize..6), 1..=12).prop_flat_map(|pairs| {
        let pairs: Vec<(usize, usize)> = pairs.into_iter().collect();
        let len = pairs.len();
        (
            Just(pairs),
            proptest::collection::vec(1u64..32_000_000, len),
        )
            .prop_map(|(pairs, sizes)| {
                let mut b = Coflow::builder(0);
                for (&(s, d), &z) in pairs.iter().zip(&sizes) {
                    b = b.flow(s, d, z);
                }
                b.build()
            })
    })
}

fn arb_fabric() -> impl Strategy<Value = Fabric> {
    (
        prop_oneof![
            Just(Dur::ZERO),
            Just(Dur::from_micros(100)),
            Just(Dur::from_millis(10)),
        ],
        prop_oneof![Just(1u64), Just(40)],
    )
        .prop_map(|(delta, gbps)| Fabric::new(6, Bandwidth::from_gbps(gbps), delta))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every circuit scheduler produces a complete schedule that finishes
    /// all flows and never beats the theoretical lower bound.
    #[test]
    fn circuit_schedulers_are_sound(coflow in arb_coflow(), fabric in arb_fabric()) {
        for sched in [
            CircuitScheduler::Solstice,
            CircuitScheduler::Tms,
            CircuitScheduler::Edmond { slot: Dur::from_millis(50) },
        ] {
            let o = sched.service_coflow(&coflow, &fabric, Time::ZERO);
            prop_assert_eq!(o.flow_finish.len(), coflow.num_flows());
            prop_assert!(o.cct(Time::ZERO) >= circuit_lower_bound(&coflow, &fabric),
                "{} beat T_cL", sched.name());
            // Coflow finish is the max of flow finishes.
            prop_assert!(o.flow_finish.iter().all(|&t| t <= o.finish));
        }
    }

    /// Sunflow never schedules worse than twice the lower bound, and its
    /// switching count is optimal offline — invariants, not tendencies.
    #[test]
    fn sunflow_dominates_structurally(coflow in arb_coflow(), fabric in arb_fabric()) {
        let s = IntraScheduler::new(&fabric, SunflowConfig::default()).schedule(&coflow);
        prop_assert!(s.cct() <= circuit_lower_bound(&coflow, &fabric) * 2);
        prop_assert_eq!(s.circuit_setups(), coflow.num_flows() as u64);
    }

    /// The packet simulators drain every coflow and respect T_pL.
    #[test]
    fn packet_simulators_are_sound(coflow in arb_coflow(), fabric in arb_fabric()) {
        for outcomes in [
            simulate_packet(std::slice::from_ref(&coflow), &fabric, &mut Varys),
            simulate_packet(std::slice::from_ref(&coflow), &fabric, &mut Aalo::default()),
        ] {
            let cct = outcomes[0].cct(Time::ZERO).as_secs_f64();
            let tpl = packet_lower_bound(&coflow, &fabric).as_secs_f64();
            prop_assert!(cct >= tpl - 1e-6, "{cct} < {tpl}");
            // Fluid simulation cannot take more than |C| serializations
            // of the bottleneck (gross sanity bound), plus Aalo's 10 ms
            // coordination epoch before first service.
            prop_assert!(cct <= tpl * (coflow.num_flows() as f64 + 1.0) + 0.021);
        }
    }

    /// Sunflow in a circuit network is at least as slow as the packet
    /// ideal but within the Lemma 2 envelope.
    #[test]
    fn circuit_vs_packet_sandwich(coflow in arb_coflow(), fabric in arb_fabric()) {
        let s = IntraScheduler::new(&fabric, SunflowConfig::default()).schedule(&coflow);
        prop_assert!(sunflow::model::lemma2_holds(s.cct(), &coflow, &fabric));
        prop_assert!(s.cct() >= packet_lower_bound(&coflow, &fabric));
    }
}
