//! Workload pipeline integration: generation → trace format round-trip →
//! perturbation → idleness scaling, with the invariants each stage must
//! preserve.

use sunflow::prelude::*;
use sunflow::workload::{
    generate, network_idleness, parse, perturb_sizes, scale_to_idleness, write, SynthConfig, MB,
};

fn small() -> (Vec<sunflow::model::Coflow>, Fabric) {
    let cfg = SynthConfig {
        coflows: 60,
        ports: 40,
        horizon_secs: 600.0,
        seed: 4242,
    };
    (
        generate(&cfg),
        Fabric::new(40, Fabric::GBPS, Fabric::default_delta()),
    )
}

#[test]
fn trace_format_roundtrip_preserves_structure() {
    let (coflows, _) = small();
    let text = write(40, &coflows);
    let parsed = parse(&text).expect("own output must parse");
    assert_eq!(parsed.ports, 40);
    assert_eq!(parsed.coflows.len(), coflows.len());
    for (a, b) in coflows.iter().zip(&parsed.coflows) {
        assert_eq!(a.id(), b.id());
        // The format quantizes arrivals to milliseconds.
        assert!(a.arrival().saturating_since(b.arrival()) <= sunflow::model::Dur::from_millis(1));
        assert_eq!(a.category(), b.category());
        assert_eq!(a.num_senders(), b.num_senders());
        assert_eq!(a.num_receivers(), b.num_receivers());
        // Byte totals survive up to the MB quantization of the format.
        let delta = a.total_bytes().abs_diff(b.total_bytes());
        assert!(delta <= a.num_flows() as u64 * MB, "coflow {}", a.id());
    }
}

#[test]
fn perturbation_preserves_structure_and_approximate_bytes() {
    let (coflows, _) = small();
    let p = perturb_sizes(&coflows, 0.05, 777);
    for (a, b) in coflows.iter().zip(&p) {
        assert_eq!(a.num_flows(), b.num_flows());
        assert_eq!(a.category(), b.category());
        let ratio = b.total_bytes() as f64 / a.total_bytes() as f64;
        assert!((0.90..=1.10).contains(&ratio));
    }
}

#[test]
fn idleness_scaling_hits_targets_and_keeps_structure() {
    let (coflows, fabric) = small();
    for target in [0.3, 0.6] {
        let (scaled, ppm) = scale_to_idleness(&coflows, &fabric, target);
        assert!(ppm > 0);
        let got = network_idleness(&scaled, &fabric);
        assert!((got - target).abs() < 0.05, "target {target}, got {got}");
        for (a, b) in coflows.iter().zip(&scaled) {
            assert_eq!(a.num_flows(), b.num_flows());
            assert_eq!(a.arrival(), b.arrival());
        }
    }
}

#[test]
fn scaling_then_scheduling_is_consistent() {
    // Scaled-up coflows take proportionally longer under Sunflow.
    use sunflow::scheduler::{IntraScheduler, SunflowConfig};
    let (coflows, fabric) = small();
    let intra = IntraScheduler::new(&fabric, SunflowConfig::default());
    let c = &coflows[0];
    let doubled = c.scaled_bytes(2, 1);
    let base = intra.schedule(c).cct();
    let double = intra.schedule(&doubled).cct();
    assert!(double > base);
    // Processing doubles; reconfiguration overhead does not: the CCT
    // falls between 1x and 2x.
    assert!(double <= base * 2);
}
