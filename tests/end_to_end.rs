//! End-to-end integration across the workspace: workload generation →
//! scheduling (circuit and packet) → outcome invariants.

use sunflow::baselines::CircuitScheduler;
use sunflow::model::lemma1_holds;
use sunflow::packet::{Aalo, Varys};
use sunflow::prelude::*;
use sunflow::workload::{generate, perturb_sizes, SynthConfig};

fn small_workload() -> Vec<sunflow::model::Coflow> {
    let cfg = SynthConfig {
        coflows: 40,
        ports: 32,
        horizon_secs: 300.0,
        seed: 99,
    };
    perturb_sizes(&generate(&cfg), 0.05, 1)
}

fn fabric() -> Fabric {
    Fabric::new(32, Fabric::GBPS, Fabric::default_delta())
}

#[test]
fn every_intra_engine_respects_the_circuit_lower_bound() {
    let coflows = small_workload();
    let f = fabric();
    for engine in [
        IntraEngine::Sunflow(SunflowConfig::default()),
        IntraEngine::Baseline(CircuitScheduler::Solstice),
        IntraEngine::Baseline(CircuitScheduler::Tms),
    ] {
        for (c, o) in coflows.iter().zip(run_intra(&coflows, &f, engine)) {
            let cct = o.cct(Time::ZERO);
            assert!(
                cct >= circuit_lower_bound(c, &f),
                "{} beat T_cL on coflow {}",
                engine.name(),
                c.id()
            );
        }
    }
}

#[test]
fn sunflow_meets_lemma1_on_generated_traffic() {
    let coflows = small_workload();
    let f = fabric();
    let intra = IntraScheduler::new(&f, SunflowConfig::default());
    for c in &coflows {
        let s = intra.schedule(c);
        assert!(lemma1_holds(s.cct(), c, &f), "coflow {}", c.id());
        assert_eq!(s.circuit_setups(), c.num_flows() as u64);
    }
}

#[test]
fn packet_schedulers_respect_the_packet_lower_bound() {
    let coflows = small_workload();
    let f = fabric();
    for outcomes in [
        simulate_packet(&coflows, &f, &mut Varys),
        simulate_packet(&coflows, &f, &mut Aalo::default()),
    ] {
        for (c, o) in coflows.iter().zip(outcomes) {
            // CCT includes queueing, so it's at least T_pL (up to fluid
            // rounding of a few microseconds).
            let cct = o.cct(c.arrival()).as_secs_f64();
            let tpl = packet_lower_bound(c, &f).as_secs_f64();
            assert!(cct >= tpl - 1e-5, "coflow {}: {} < {}", c.id(), cct, tpl);
        }
    }
}

#[test]
fn online_circuit_replay_completes_all_coflows() {
    let coflows = small_workload();
    let f = fabric();
    let r = simulate_circuit(&coflows, &f, &OnlineConfig::default(), &ShortestFirst);
    assert_eq!(r.outcomes.len(), coflows.len());
    for (c, o) in coflows.iter().zip(&r.outcomes) {
        assert!(o.finish >= c.arrival());
        assert!(o.cct(c.arrival()) >= circuit_lower_bound(c, &f));
        // Every flow finished no later than the coflow.
        assert!(o.flow_finish.iter().all(|&t| t <= o.finish));
    }
}

/// The circuit network can never beat the packet network for the same
/// coflow in isolation — the packet fabric is the δ = 0 ideal.
#[test]
fn circuit_never_beats_packet_in_isolation() {
    let coflows = small_workload();
    let f = fabric();
    let intra = IntraScheduler::new(&f, SunflowConfig::default());
    for c in &coflows {
        let circuit_cct = intra.schedule(c).cct();
        let packet_out = simulate_packet(std::slice::from_ref(c), &f, &mut Varys);
        let packet_cct = packet_out[0].cct(c.arrival());
        // Tolerance: packet fluid sim rounds to picoseconds.
        assert!(
            circuit_cct.as_secs_f64() >= packet_cct.as_secs_f64() - 1e-5,
            "coflow {}: circuit {} < packet {}",
            c.id(),
            circuit_cct,
            packet_cct
        );
    }
}

/// Offline batch scheduling and the online replay agree when all coflows
/// are present from t = 0 (same priorities, no rescheduling churn).
#[test]
fn offline_and_online_agree_for_simultaneous_arrivals() {
    let f = fabric();
    let coflows: Vec<_> = small_workload()
        .into_iter()
        .take(8)
        .map(|c| {
            // Rebase all arrivals to zero.
            let mut b = sunflow::model::Coflow::builder(c.id());
            for fl in c.flows() {
                b = b.flow(fl.src, fl.dst, fl.bytes);
            }
            b.build()
        })
        .collect();
    let inter = sunflow::scheduler::InterScheduler::new(&f, SunflowConfig::default());
    let offline = inter.schedule_batch(&coflows, &ShortestFirst);
    // Keep-policy replay matches the offline batch exactly: rescheduling
    // at completions re-derives the same plan when nothing is displaced.
    let cfg = OnlineConfig::default().active_policy(sunflow::sim::ActiveCircuitPolicy::Keep);
    let online = simulate_circuit(&coflows, &f, &cfg, &ShortestFirst);
    for (a, b) in offline.iter().zip(&online.outcomes) {
        assert_eq!(a.finish(), b.finish, "coflow {}", a.coflow());
    }
}

/// §4.2: combining equal-priority Coflows into one gives each constituent
/// an equal chance but "may come at the cost of a larger average CCT".
#[test]
fn combining_equal_priority_coflows_costs_average_cct() {
    let f = fabric();
    let a = Coflow::builder(0).flow(0, 0, 40_000_000).build();
    let b = Coflow::builder(1).flow(0, 1, 40_000_000).build();
    let intra = IntraScheduler::new(&f, SunflowConfig::default());
    let inter = sunflow::scheduler::InterScheduler::new(&f, SunflowConfig::default());

    // Served individually (equal priority broken by id): the first
    // finishes early, the second later.
    let separate = inter.schedule_batch(&[a.clone(), b.clone()], &ShortestFirst);
    let avg_separate = (separate[0].cct().as_secs_f64() + separate[1].cct().as_secs_f64()) / 2.0;

    // Combined: both constituents complete only when the union does.
    let merged = Coflow::merge(9, &[a, b]);
    let merged_cct = intra.schedule(&merged).cct().as_secs_f64();

    assert!(merged_cct >= avg_separate, "{merged_cct} < {avg_separate}");
}
